#include "src/exec/core.h"

namespace twill {

bool Layout::build(Module& m, Memory& mem) {
  // build() may be called again on the same Layout (the simulators rebuild a
  // shared SimProgram layout into each run's fresh memory); start clean so a
  // prior failure does not leak into this build.
  ok = true;
  error.clear();
  globalAddr.clear();
  allocaAddr.clear();

  globalAddr.reserve(m.globals().size());
  size_t allocaCount = 0;
  for (auto& f : m.functions())
    for (auto& bb : f->blocks())
      for (auto& inst : *bb)
        if (inst->op() == Opcode::Alloca) ++allocaCount;
  allocaAddr.reserve(allocaCount);

  // 64-bit cursor: a handful of multi-GiB globals would wrap a uint32_t
  // cursor back into range and "fit". The fit check happens before any
  // initializer byte is written, so an oversized module never touches mem.
  uint64_t addr = dataBase;
  auto align4 = [](uint64_t a) { return (a + 3u) & ~uint64_t{3}; };
  auto fits = [&](uint64_t need, const std::string& what) {
    if (need <= mem.size()) return true;
    ok = false;
    error = what + " does not fit in simulated memory (need " + std::to_string(need) +
            " bytes, ceiling " + std::to_string(mem.size()) + ")";
    return false;
  };
  for (auto& g : m.globals()) {
    addr = align4(addr);
    const uint64_t esz = g->elemByteSize();
    const uint64_t bytes = esz * g->count();
    if (!fits(addr + bytes, "global '" + g->name() + "'")) return false;
    globalAddr[g] = static_cast<uint32_t>(addr);
    const auto& init = g->init();
    for (uint32_t i = 0; i < g->count(); ++i) {
      uint32_t v = i < init.size() ? init[i] : 0;
      mem.store(static_cast<uint32_t>(addr + i * esz), static_cast<uint32_t>(esz), v);
    }
    addr += bytes;
  }
  stackBase = static_cast<uint32_t>(align4(addr));
  addr = stackBase;
  for (auto& f : m.functions()) {
    for (auto& bb : f->blocks()) {
      for (auto& inst : *bb) {
        if (inst->op() != Opcode::Alloca) continue;
        addr = align4(addr);
        const uint64_t esz = inst->allocaElemBits() == 1 ? 1 : inst->allocaElemBits() / 8;
        const uint64_t bytes = esz * inst->allocaCount();
        if (!fits(addr + bytes, "stack slot in '" + f->name() + "'")) return false;
        allocaAddr[inst] = static_cast<uint32_t>(addr);
        addr += bytes;
      }
    }
  }
  top = static_cast<uint32_t>(align4(addr));
  return true;
}

std::string memOutOfRangeMessage(uint32_t addr, uint32_t len, uint32_t size) {
  return "memory access out of range: addr=" + std::to_string(addr) + " len=" +
         std::to_string(len) + " size=" + std::to_string(size);
}

}  // namespace twill
