#include "src/exec/superblock.h"

namespace twill {

void buildSuperOps(DecodedFunction& df) {
  df.sops.clear();
  df.sops.resize(df.insts.size());
  df.superSwitchPool.clear();
  // A CFG edge is "free" when taking it is a pure goto: no phi copies and
  // no decode-time trap. Free edges get the specialized direct-jump
  // dispatch codes (no takeEdge call in the trace runner).
  auto freeEdge = [&](uint32_t edgeIdx) {
    const DecodedEdge& e = df.edges[edgeIdx];
    return e.trapMsg < 0 && e.copyCount == 0;
  };
  for (size_t pc = 0; pc < df.insts.size(); ++pc) {
    const DecodedInst& d = df.insts[pc];
    SuperOp& so = df.sops[pc];
    so.op = d.op;
    so.evalBits = d.evalBits;
    so.auxBits = d.auxBits;
    so.accessBytes = d.accessBytes;
    so.flags = d.flags;
    so.swCost = d.swCost;
    so.a = d.a;
    so.b = d.b;
    so.c = d.c;
    so.resSlot = d.resSlot;
    so.resMask = d.resMask;
    so.aux = d.scale;
    switch (d.op) {
      case Opcode::Br:
        if (freeEdge(d.edge0)) {
          so.kind = SuperOp::kJump0;
          so.aux = df.edges[d.edge0].targetPc;
        } else {
          so.kind = SuperOp::kJump;
          so.aux = d.edge0;
        }
        break;
      case Opcode::CondBr:
        if (freeEdge(d.edge0) && freeEdge(d.edge1)) {
          so.kind = SuperOp::kCond0;
          so.b = df.edges[d.edge0].targetPc;  // taken
          so.c = df.edges[d.edge1].targetPc;  // fall-through
        } else {
          so.kind = SuperOp::kCond;
        }
        break;
      case Opcode::Switch: {
        so.kind = SuperOp::kSwitch;
        if (d.caseCount > 0) {
          const DecodedCase* cs = df.cases.data() + d.caseBegin;
          uint32_t minV = cs[0].value, maxV = cs[0].value;
          for (uint32_t i = 1; i < d.caseCount; ++i) {
            minV = cs[i].value < minV ? cs[i].value : minV;
            maxV = cs[i].value > maxV ? cs[i].value : maxV;
          }
          const uint64_t span = static_cast<uint64_t>(maxV) - minV + 1;
          if (span <= 1024) {
            // Dense table: O(1) dispatch instead of a linear case scan.
            // First-wins fill preserves the scan's duplicate-case semantics.
            so.kind = SuperOp::kSwitchDense;
            so.b = minV;
            so.c = static_cast<uint32_t>(span);
            so.aux = static_cast<uint32_t>(df.superSwitchPool.size());
            df.superSwitchPool.resize(df.superSwitchPool.size() + span, d.edge0);
            uint32_t* tbl = df.superSwitchPool.data() + so.aux;
            for (uint32_t i = 0; i < d.caseCount; ++i) {
              uint32_t& slot = tbl[cs[i].value - minV];
              if (slot == d.edge0) slot = cs[i].edge;
            }
          }
        }
        break;
      }
      case Opcode::Ret:
        so.kind = SuperOp::kRet;
        break;
      case Opcode::Call:
        so.kind = SuperOp::kCall;
        break;
      case Opcode::Produce:
      case Opcode::Consume:
      case Opcode::SemRaise:
      case Opcode::SemLower:
      case Opcode::Phi:  // poisoned record or missing-terminator filler
        so.kind = SuperOp::kSlow;
        break;
      default:
        // Straight-line op: the dispatch code is the opcode ordinal.
        so.kind = static_cast<uint8_t>(d.op);
        break;
    }
    // Any poisoned record dispatches through step()'s trap arm, whatever
    // opcode it started as.
    if (d.trapMsg >= 0) so.kind = SuperOp::kSlow;
  }
}

}  // namespace twill
