// Execution substrate shared by every engine: simulated-memory layout,
// channel endpoints, and the one-instruction step protocol.
//
// These types used to live in src/ir/interp.h; they moved here when the
// pre-decoded execution engine (src/exec/decoded.h) was introduced so the
// decoder, the reference tree-walking interpreter and the cycle-level
// runtime can all share them without include cycles. src/ir/interp.h
// re-exports everything, so existing includes keep working.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/function.h"
#include "src/support/memory.h"

namespace twill {

/// Address assignment for a module in simulated memory.
struct Layout {
  std::unordered_map<const GlobalVar*, uint32_t> globalAddr;
  std::unordered_map<const Instruction*, uint32_t> allocaAddr;
  uint32_t dataBase = 0x1000;   // globals start here
  uint32_t stackBase = 0;       // allocas start here (after globals)
  uint32_t top = 0;             // first free address

  /// False when the module's globals + allocas do not fit in `mem` (the
  /// simulated-memory ceiling); `error` then holds a diagnostic. Callers
  /// must check before running — addresses past the failure point are
  /// unassigned (kUnmapped).
  bool ok = true;
  std::string error;

  /// Sentinel returned by addrOf for a global/alloca this layout never
  /// assigned (the module was modified after build()). Engines turn it into
  /// a trap diagnostic instead of crashing.
  static constexpr uint32_t kUnmapped = 0xFFFFFFFFu;

  /// Assigns addresses and writes global initializers into `mem`. Returns
  /// `ok`: false when the data does not fit in mem.size() bytes (all size
  /// arithmetic is 64-bit, so adversarially large array counts cannot wrap
  /// the address space into a bogus "fit").
  bool build(Module& m, Memory& mem);
  uint32_t addrOf(const GlobalVar* g) const {
    auto it = globalAddr.find(g);
    return it == globalAddr.end() ? kUnmapped : it->second;
  }
  uint32_t addrOf(const Instruction* alloca) const {
    auto it = allocaAddr.find(alloca);
    return it == allocaAddr.end() ? kUnmapped : it->second;
  }
};

/// Trap text for an out-of-range program access, shared by all three
/// engines so differential checks see identical messages.
std::string memOutOfRangeMessage(uint32_t addr, uint32_t len, uint32_t size);

/// Queue/semaphore endpoints used by the execution engines. The functional
/// implementation (FunctionalChannels) is unbounded; the cycle-level runtime
/// provides a bounded, latency-accurate implementation.
class ChannelIO {
public:
  virtual ~ChannelIO() = default;
  /// Returns false if the operation must block (state unchanged).
  virtual bool tryProduce(int channel, uint32_t value) = 0;
  virtual bool tryConsume(int channel, uint32_t& value) = 0;
  virtual bool trySemRaise(int sem, uint32_t count) = 0;
  virtual bool trySemLower(int sem, uint32_t count) = 0;
};

/// Unbounded queues + counting semaphores; never blocks a produce.
class FunctionalChannels : public ChannelIO {
public:
  bool tryProduce(int channel, uint32_t value) override {
    queues_[channel].push_back(value);
    return true;
  }
  bool tryConsume(int channel, uint32_t& value) override {
    auto& q = queues_[channel];
    if (q.empty()) return false;
    value = q.front();
    q.pop_front();
    return true;
  }
  bool trySemRaise(int sem, uint32_t count) override {
    sems_[sem] += count;
    return true;
  }
  bool trySemLower(int sem, uint32_t count) override {
    auto& s = sems_[sem];
    if (s < count) return false;
    s -= count;
    return true;
  }
  const std::deque<uint32_t>& queue(int ch) { return queues_[ch]; }
  size_t totalQueued() const {
    size_t n = 0;
    for (auto& [ch, q] : queues_) n += q.size();
    return n;
  }

private:
  std::unordered_map<int, std::deque<uint32_t>> queues_;
  std::unordered_map<int, uint64_t> sems_;
};

/// Result of executing (or attempting) one instruction.
enum class StepStatus : uint8_t {
  Ran,       // instruction completed
  Blocked,   // a queue/semaphore op could not proceed; retry later
  Finished,  // outermost function returned
  Trapped,   // runtime error (diagnostic in the engine's trapMessage())
};

struct DecodedInst;

/// Kept register-sized (16 bytes): one of these is returned per simulated
/// instruction.
struct StepResult {
  StepStatus status = StepStatus::Ran;
  /// Opcode that ran (valid for Ran/Blocked) — cost models key off this.
  Opcode op = Opcode::Add;
  /// Set by the pre-decoded engine: the packed record with pre-computed
  /// operand widths, channel ids, cycle costs and the original Instruction
  /// (`dinst->src`), so cost models never touch the IR in the hot loop.
  /// The reference tree-walker (RefExecState) leaves it null.
  const DecodedInst* dinst = nullptr;
};

}  // namespace twill
