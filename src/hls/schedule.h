// LegUp-style high-level synthesis model: dependence- and
// resource-constrained list scheduling of each basic block into FSM states,
// functional-unit binding, and an area estimate.
//
// The thesis uses LegUp (§5.4) to translate hardware partitions to Verilog;
// what its evaluation needs from LegUp is (a) how many cycles a block takes
// (the FSM state count, which captures the ILP LegUp extracts by chaining
// combinational ops and overlapping independent ones) and (b) how many
// LUTs/DSPs/BRAMs the circuit needs. This module computes both. The
// cycle-level executor charges the static state count per block and models
// memory/queue operations dynamically (they depend on bus contention).
#pragma once

#include <unordered_map>
#include <vector>

#include "src/ir/function.h"
#include "src/model/optables.h"

namespace twill {

struct HlsConstraints {
  unsigned maxChainDepth = 4;   // combinational ops chained per state
  unsigned memPortsPerState = 1;
  unsigned queuePortsPerState = 1;  // §4.4: one runtime call initiated/cycle
  unsigned multipliersPerState = 2;
  unsigned dividersPerState = 1;
};

struct BlockSchedule {
  /// Static FSM cycles for this block: one per state, plus fixed multi-cycle
  /// arithmetic latencies. Excludes the dynamic part of memory/queue
  /// operations (bus handshakes), which the executor charges at run time.
  unsigned staticCycles = 1;
  unsigned numStates = 1;
  /// Initiation interval under iterative modulo scheduling (LegUp pipelines
  /// across loop iterations, §3.1.2): the resource-constrained minimum
  /// cycles between consecutive executions of this block in steady state.
  /// The executor charges `pipelinedII` instead of `staticCycles` when the
  /// block re-executes back-to-back (loop steady state).
  unsigned pipelinedII = 1;
  /// Instruction -> state index (diagnostics / tests).
  std::unordered_map<const Instruction*, unsigned> stateOf;
};

struct AreaEstimate {
  unsigned luts = 0;
  unsigned dsps = 0;
  unsigned brams = 0;
  AreaEstimate& operator+=(const AreaEstimate& o) {
    luts += o.luts;
    dsps += o.dsps;
    brams += o.brams;
    return *this;
  }
};

struct FunctionSchedule {
  Function* fn = nullptr;
  /// Name and instruction count at scheduling time: reuse guards for the
  /// driver's schedule cache (a recycled Function address after DSWP gets a
  /// fresh "_dswp_" name, and a pass that inserts/removes instructions in a
  /// surviving function changes the count, so either mismatch exposes a
  /// stale entry).
  std::string fnName;
  size_t instCount = 0;
  std::unordered_map<const BasicBlock*, BlockSchedule> blocks;
  unsigned totalStates = 0;
  AreaEstimate area;

  unsigned staticCyclesFor(const BasicBlock* bb) const {
    auto it = blocks.find(bb);
    return it == blocks.end() ? 1u : it->second.staticCycles;
  }
  unsigned pipelinedIIFor(const BasicBlock* bb) const {
    auto it = blocks.find(bb);
    return it == blocks.end() ? 1u : it->second.pipelinedII;
  }
};

/// Schedules one function. Pure analysis: the IR is not modified.
FunctionSchedule scheduleFunction(Function& f, const HlsConstraints& c = {});

/// Map from every function that may execute in hardware to its FSM schedule.
/// Lives here (not in src/sim) because the pre-decoded execution engine
/// folds these per-block cycle counts into its instruction records.
using ScheduleMap = std::unordered_map<const Function*, FunctionSchedule>;

/// Builds schedules for every function in the module.
ScheduleMap scheduleModule(Module& m, const HlsConstraints& c = {});

/// Like scheduleModule, but reuses entries from `prior` (the baseline
/// module's schedules) for functions the later passes left untouched —
/// DSWP only redirects call sites in surviving functions, which scheduling
/// is invariant to, so the driver schedules each function once per report
/// instead of once per flow. An entry is reused only when the function
/// pointer, its name and its exact block set still match (erased functions
/// leave dangling keys in `prior`; those are never dereferenced, and a
/// recycled address fails the name/block guard). Scheduling is
/// deterministic, so a reused entry is bit-identical to a recomputation.
ScheduleMap scheduleModule(Module& m, const HlsConstraints& c, const ScheduleMap& prior);

/// Area of the memory blocks a pure-hardware (LegUp) translation would
/// instantiate for the module's globals (Twill instead keeps data in the
/// processor's memory, §6.2).
unsigned bramBlocksForGlobals(const Module& m);

}  // namespace twill
