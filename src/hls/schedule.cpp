#include "src/hls/schedule.h"

#include <algorithm>

namespace twill {
namespace {

bool isChainable(const Instruction& inst) {
  return hwLatency(inst) == 0 && !inst.isTerminator() && inst.op() != Opcode::Phi;
}

bool usesMemPort(Opcode op) { return op == Opcode::Load || op == Opcode::Store; }
bool usesQueuePort(Opcode op) {
  return op == Opcode::Produce || op == Opcode::Consume || op == Opcode::SemRaise ||
         op == Opcode::SemLower;
}

struct StateUse {
  unsigned chainDepth = 0;  // max combinational depth accumulated
  unsigned memOps = 0;
  unsigned queueOps = 0;
  unsigned muls = 0;
  unsigned divs = 0;
  std::unordered_map<Opcode, unsigned> fuUse;  // per-kind concurrent use
};

bool isDivOp(Opcode op) {
  return op == Opcode::SDiv || op == Opcode::UDiv || op == Opcode::SRem || op == Opcode::URem;
}

}  // namespace

FunctionSchedule scheduleFunction(Function& f, const HlsConstraints& c) {
  FunctionSchedule out;
  out.fn = &f;
  out.fnName = f.name();
  out.instCount = f.instructionCount();
  f.renumber();

  // Per-function FU binding: track the maximum concurrent use of each
  // expensive unit kind across all states; shared units are muxed.
  std::unordered_map<Opcode, unsigned> maxFuUse;
  unsigned maxMemPorts = 0, maxQueuePorts = 0;
  // Per-opcode static census (first occurrence + instance count), filled in
  // the main walk so the area loop below never rescans the function.
  std::unordered_map<Opcode, std::pair<const Instruction*, unsigned>> census;
  // Register estimate: one register per computed value. Consume results
  // live in the HWInterface's receive register (cheap), and PHIs are
  // counted as muxes by hwOpArea, so neither gets a full register here —
  // this matters for DSWP partitions, where replicated control flow and
  // queue plumbing must not be charged like real datapath.
  size_t valueCount = f.numArgs();
  size_t consumeCount = 0;

  // ready[instr id] = {state in which the value is available, combinational
  // depth within that state (for chaining)}. Ids are dense after renumber(),
  // so one flat vector serves every block; readyIn tags which block wrote a
  // slot, so entries from other blocks (or not-yet-scheduled defs) read as
  // absent without clearing between blocks.
  std::vector<std::pair<unsigned, unsigned>> ready(f.numValueSlots());
  std::vector<const BasicBlock*> readyIn(f.numValueSlots(), nullptr);

  for (auto& bbPtr : f.blocks()) {
    BasicBlock* bb = bbPtr;
    BlockSchedule bs;
    std::vector<StateUse> states(1);

    unsigned extraFixedCycles = 0;  // multi-cycle arithmetic latencies
    unsigned blockMuls = 0, blockDivs = 0;  // static counts for the II floor
    for (auto& instPtr : *bb) {
      Instruction* inst = instPtr;
      auto [cIt, cFresh] = census.emplace(inst->op(), std::make_pair(inst, 0u));
      (void)cFresh;
      ++cIt->second.second;
      if (inst->op() == Opcode::Mul) ++blockMuls;
      if (isDivOp(inst->op())) ++blockDivs;
      if (!inst->type()->isVoid() && !inst->isPhi()) {
        if (inst->op() == Opcode::Consume) ++consumeCount;
        else ++valueCount;
      }
      if (inst->isPhi()) {
        // PHIs resolve on state 0 entry (register muxes).
        ready[inst->id()] = {0, 0};
        readyIn[inst->id()] = bb;
        bs.stateOf[inst] = 0;
        continue;
      }
      // Earliest state from operand availability.
      unsigned start = 0;
      unsigned depth = 0;
      for (unsigned i = 0; i < inst->numOperands(); ++i) {
        auto* d = dyn_cast<Instruction>(inst->operand(i));
        if (!d || d->parent() != bb) continue;  // cross-block: in registers
        if (readyIn[d->id()] != bb) continue;
        const auto& r = ready[d->id()];
        if (r.first > start) {
          start = r.first;
          depth = r.second;
        } else if (r.first == start) {
          depth = std::max(depth, r.second);
        }
      }
      // Resource and chain-depth constraints may push the op later.
      const bool chain = isChainable(*inst);
      const Opcode op = inst->op();
      auto fits = [&](unsigned s) {
        if (s >= states.size()) return true;
        StateUse& u = states[s];
        if (chain && u.chainDepth + 1 > c.maxChainDepth) return false;
        if (usesMemPort(op) && u.memOps + 1 > c.memPortsPerState) return false;
        if (usesQueuePort(op) && u.queueOps + 1 > c.queuePortsPerState) return false;
        if (op == Opcode::Mul && u.muls + 1 > c.multipliersPerState) return false;
        if (isDivOp(op) && u.divs + 1 > c.dividersPerState) return false;
        return true;
      };
      // Non-chainable ops with operand produced in the same state must wait
      // for the next state boundary (values latch in registers).
      if (!chain && depth > 0) ++start, depth = 0;
      while (!fits(start)) ++start, depth = 0;
      while (states.size() <= start) states.push_back({});

      StateUse& u = states[start];
      if (chain) u.chainDepth = std::max(u.chainDepth, depth + 1);
      if (usesMemPort(op)) ++u.memOps;
      if (usesQueuePort(op)) ++u.queueOps;
      if (op == Opcode::Mul) ++u.muls;
      if (isDivOp(op)) ++u.divs;
      ++u.fuUse[op];

      bs.stateOf[inst] = start;
      readyIn[inst->id()] = bb;
      unsigned lat = hwLatency(*inst);
      if (usesMemPort(op) || usesQueuePort(op)) {
        // Dynamic ops: occupy their issue state; the handshake cycles are
        // charged by the executor (bus model). Value available next state.
        ready[inst->id()] = {start + 1, 0};
      } else if (lat == 0) {
        ready[inst->id()] = {start, depth + 1};
      } else {
        ready[inst->id()] = {start + lat, 0};
        extraFixedCycles += lat - 1;  // states advance once; remainder stalls
      }
    }
    bs.numStates = static_cast<unsigned>(states.size());
    bs.staticCycles = bs.numStates + extraFixedCycles;
    // Modulo-scheduling initiation interval: resource-constrained floor.
    // One memory port and one runtime call per cycle; two multipliers; a
    // serial (non-pipelined) divider occupies its full latency.
    {
      // Memory and queue ports are charged dynamically by the executor
      // (their bus serialization realizes the port constraint), so the II
      // floor here covers only the fixed-latency shared units.
      unsigned ii = 1;
      ii = std::max(ii, (blockMuls + c.multipliersPerState - 1) / c.multipliersPerState);
      ii = std::max(ii, blockDivs * 13);  // serial divider latency (§5.2)
      bs.pipelinedII = std::min(ii, bs.staticCycles);
    }
    // Update FU binding maxima.
    for (const StateUse& u : states) {
      maxMemPorts = std::max(maxMemPorts, u.memOps);
      maxQueuePorts = std::max(maxQueuePorts, u.queueOps);
      for (auto& [op, cnt] : u.fuUse) {
        auto& mx = maxFuUse[op];
        mx = std::max(mx, cnt);
      }
    }
    out.totalStates += bs.numStates;
    out.blocks[bb] = std::move(bs);
  }

  // Area: shared functional units (max concurrent use), registers, FSM and
  // multiplexing overhead. Constants are coarse but calibrated to land in
  // the LUT ranges Table 6.2 reports for CHStone-sized kernels.
  AreaEstimate area;
  for (auto& [op, cnt] : maxFuUse) {
    // Runtime operations go through the per-thread HWInterface (its 44 LUTs
    // are part of the runtime area model), and branches are FSM transitions
    // (counted via the per-state term) — neither is a datapath unit.
    if (usesQueuePort(op) || isTerminatorOp(op)) continue;
    // One representative instruction of this opcode (first in program
    // order, from the census) for the per-unit cost.
    auto cIt = census.find(op);
    if (cIt == census.end()) continue;
    const Instruction* sample = cIt->second.first;
    OpArea oa = hwOpArea(*sample);
    area.luts += oa.luts * cnt;
    area.dsps += oa.dsps * cnt;
    // Sharing mux: every extra user of a shared unit costs ~8 LUTs of
    // steering logic, charged against total static instances of this op.
    const unsigned instances = cIt->second.second;
    if (instances > cnt) area.luts += (instances - cnt) * 8;
  }
  // Registers: roughly one packed 32-bit register per computed value, a
  // couple of LUTs per consume (HWInterface receive register share), and
  // one-hot FSM state logic.
  area.luts += static_cast<unsigned>(valueCount) * 12;
  area.luts += static_cast<unsigned>(consumeCount) * 2;
  area.luts += out.totalStates * 3;
  out.area = area;
  return out;
}

ScheduleMap scheduleModule(Module& m, const HlsConstraints& c) {
  ScheduleMap out;
  for (auto& f : m.functions()) out.emplace(f, scheduleFunction(*f, c));
  return out;
}

ScheduleMap scheduleModule(Module& m, const HlsConstraints& c, const ScheduleMap& prior) {
  ScheduleMap out;
  for (auto& fptr : m.functions()) {
    Function* f = fptr;
    auto it = prior.find(f);
    bool reusable = it != prior.end() && it->second.fnName == f->name() &&
                    it->second.instCount == f->instructionCount() &&
                    it->second.blocks.size() == f->numBlocks();
    if (reusable) {
      // The block set must be exactly the current one: a function rebuilt
      // at a recycled address (or reshaped by a later cleanup) has blocks
      // the cached schedule has never seen.
      for (auto& bb : f->blocks()) {
        if (it->second.blocks.find(bb) == it->second.blocks.end()) {
          reusable = false;
          break;
        }
      }
    }
    out.emplace(f, reusable ? it->second : scheduleFunction(*f, c));
  }
  return out;
}

unsigned bramBlocksForGlobals(const Module& m) {
  // Virtex-5 18kbit BRAMs hold 2 KiB; LegUp instantiates one memory per
  // array (plus a minimum-size one for small arrays).
  unsigned brams = 0;
  for (const auto& g : m.globals()) brams += (g->byteSize() + 2047) / 2048;
  return brams;
}

}  // namespace twill
