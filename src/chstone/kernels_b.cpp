// Kernels part 2: GSM, JPEG, MPEG-2, SHA, plus the registry.
#include "src/chstone/kernels_a_decls.h"
#include "src/chstone/kernels.h"

namespace twill {

// ---------------------------------------------------------------------------
// GSM: LPC analysis stage of GSM 06.10 full-rate coding — autocorrelation
// over a 160-sample frame followed by the Schur recursion to 8 reflection
// coefficients with fixed-point normalization, as in CHStone's gsm.
// ---------------------------------------------------------------------------
static const char* kGsmSourceReal = R"CC(
#define FRAME 160

int sample[FRAME];
int L_ACF[9];
int refl[8];
int Pbuf[9];
int Kbuf[9];

int gsm_norm(int a) {
  /* number of left shifts until bit 30 is set (a > 0) */
  int n = 0;
  if (a == 0) return 0;
  while (a < 0x40000000) { a <<= 1; n++; }
  return n;
}

void autocorrelation(void) {
  int k, i;
  /* scale down to keep the accumulation in 32 bits */
  int smax = 0;
  for (i = 0; i < FRAME; i++) {
    int v = sample[i] < 0 ? -sample[i] : sample[i];
    if (v > smax) smax = v;
  }
  int scale = 0;
  while (smax > 4095) { smax >>= 1; scale++; }
  for (k = 0; k <= 8; k++) {
    int sum = 0;
    for (i = k; i < FRAME; i++)
      sum += (sample[i] >> scale) * (sample[i - k] >> scale);
    L_ACF[k] = sum;
  }
}

void schur_recursion(void) {
  int i, m, n;
  if (L_ACF[0] == 0) {
    for (i = 0; i < 8; i++) refl[i] = 0;
    return;
  }
  int norm = gsm_norm(L_ACF[0]);
  for (i = 0; i <= 8; i++) {
    int v = L_ACF[i] << norm >> 16;
    Kbuf[i] = v;
    Pbuf[i] = v;
  }
  for (n = 0; n < 8; n++) {
    if (Pbuf[0] == 0) { refl[n] = 0; continue; }
    int num = Kbuf[1];
    int den = Pbuf[0];
    int neg = 0;
    if (num < 0) { num = -num; neg = 1; }
    if (num >= den) { refl[n] = neg ? -32767 : 32767; }
    else { refl[n] = (num << 15) / den; if (neg) refl[n] = -refl[n]; }
    /* Schur update */
    int r = refl[n];
    for (m = 1; m <= 8 - n; m++) {
      int pm = Pbuf[m] + ((Kbuf[m] * r) >> 15);
      int km = Kbuf[m] + ((Pbuf[m] * r) >> 15);
      Pbuf[m - 1] = pm;
      Kbuf[m] = km;
    }
    /* shift K for next order */
    for (m = 8 - n; m >= 1; m--) Kbuf[m] = Kbuf[m - 1];
  }
}

int main(void) {
  int i, frame;
  unsigned check = 0;
  for (frame = 0; frame < 3; frame++) {
    int x = 777 + frame * 131;
    for (i = 0; i < FRAME; i++) {
      x = x * 1103515245 + 12345;
      int tone = ((i * (5 + frame)) % 32) * 256 - 4096;
      sample[i] = tone + ((x >> 18) % 300);
    }
    autocorrelation();
    schur_recursion();
    for (i = 0; i < 8; i++) check = check * 31 + (unsigned)(refl[i] + 65536);
    check ^= (unsigned)L_ACF[0];
  }
  return (int)(check & 0x7FFFFFFF);
}
)CC";

// ---------------------------------------------------------------------------
// JPEG: the decoder back-end of CHStone's jpeg — run/level coefficient
// decode into zigzag order, dequantization with the standard luminance
// table, the jpeg_idct_islow integer 2D IDCT (the classic 13-bit fixed-point
// butterflies), and pixel clamping.
// ---------------------------------------------------------------------------
const char* kJpegSource = R"CC(
#define FIX_0_298631336 2446
#define FIX_0_390180644 3196
#define FIX_0_541196100 4433
#define FIX_0_765366865 6270
#define FIX_0_899976223 7373
#define FIX_1_175875602 9633
#define FIX_1_501321110 12299
#define FIX_1_847759065 15137
#define FIX_1_961570560 16069
#define FIX_2_053119869 16819
#define FIX_2_562915447 20995
#define FIX_3_072711026 25172

const int quant[64] = {
  16, 11, 10, 16, 24, 40, 51, 61,
  12, 12, 14, 19, 26, 58, 60, 55,
  14, 13, 16, 24, 40, 57, 69, 56,
  14, 17, 22, 29, 51, 87, 80, 62,
  18, 22, 37, 56, 68, 109, 103, 77,
  24, 35, 55, 64, 81, 104, 113, 92,
  49, 64, 78, 87, 103, 121, 120, 101,
  72, 92, 95, 98, 112, 100, 103, 99
};
const int zigzag[64] = {
  0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5,
  12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6, 7, 14, 21, 28,
  35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
  58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63
};

int coef[64];
int ws[64];
unsigned char pixels[64];

void idct_rows(void) {
  int row;
  for (row = 0; row < 8; row++) {
    int p = row * 8;
    int in0 = coef[p]; int in1 = coef[p + 1]; int in2 = coef[p + 2]; int in3 = coef[p + 3];
    int in4 = coef[p + 4]; int in5 = coef[p + 5]; int in6 = coef[p + 6]; int in7 = coef[p + 7];
    int z1 = (in2 + in6) * FIX_0_541196100;
    int tmp2 = z1 - in6 * FIX_1_847759065;
    int tmp3 = z1 + in2 * FIX_0_765366865;
    int tmp0 = (in0 + in4) << 13;
    int tmp1 = (in0 - in4) << 13;
    int t10 = tmp0 + tmp3; int t13 = tmp0 - tmp3;
    int t11 = tmp1 + tmp2; int t12 = tmp1 - tmp2;
    int o0 = in7; int o1 = in5; int o2 = in3; int o3 = in1;
    int za = o0 + o3; int zb = o1 + o2; int zc = o0 + o2; int zd = o1 + o3;
    int ze = (zc + zd) * FIX_1_175875602;
    o0 = o0 * FIX_0_298631336;
    o1 = o1 * FIX_2_053119869;
    o2 = o2 * FIX_3_072711026;
    o3 = o3 * FIX_1_501321110;
    za = -(za * FIX_0_899976223);
    zb = -(zb * FIX_2_562915447);
    zc = ze - zc * FIX_1_961570560;
    zd = ze - zd * FIX_0_390180644;
    o0 += za + zc; o1 += zb + zd; o2 += zb + zc; o3 += za + zd;
    ws[p] = (t10 + o3) >> 11;
    ws[p + 7] = (t10 - o3) >> 11;
    ws[p + 1] = (t11 + o2) >> 11;
    ws[p + 6] = (t11 - o2) >> 11;
    ws[p + 2] = (t12 + o1) >> 11;
    ws[p + 5] = (t12 - o1) >> 11;
    ws[p + 3] = (t13 + o0) >> 11;
    ws[p + 4] = (t13 - o0) >> 11;
  }
}

void idct_cols(void) {
  int col;
  for (col = 0; col < 8; col++) {
    int in0 = ws[col]; int in1 = ws[col + 8]; int in2 = ws[col + 16]; int in3 = ws[col + 24];
    int in4 = ws[col + 32]; int in5 = ws[col + 40]; int in6 = ws[col + 48]; int in7 = ws[col + 56];
    int z1 = (in2 + in6) * FIX_0_541196100;
    int tmp2 = z1 - in6 * FIX_1_847759065;
    int tmp3 = z1 + in2 * FIX_0_765366865;
    int tmp0 = (in0 + in4) << 13;
    int tmp1 = (in0 - in4) << 13;
    int t10 = tmp0 + tmp3; int t13 = tmp0 - tmp3;
    int t11 = tmp1 + tmp2; int t12 = tmp1 - tmp2;
    int o0 = in7; int o1 = in5; int o2 = in3; int o3 = in1;
    int za = o0 + o3; int zb = o1 + o2; int zc = o0 + o2; int zd = o1 + o3;
    int ze = (zc + zd) * FIX_1_175875602;
    o0 = o0 * FIX_0_298631336;
    o1 = o1 * FIX_2_053119869;
    o2 = o2 * FIX_3_072711026;
    o3 = o3 * FIX_1_501321110;
    za = -(za * FIX_0_899976223);
    zb = -(zb * FIX_2_562915447);
    zc = ze - zc * FIX_1_961570560;
    zd = ze - zd * FIX_0_390180644;
    o0 += za + zc; o1 += zb + zd; o2 += zb + zc; o3 += za + zd;
    int r0 = (t10 + o3) >> 18;
    int r7 = (t10 - o3) >> 18;
    int r1 = (t11 + o2) >> 18;
    int r6 = (t11 - o2) >> 18;
    int r2 = (t12 + o1) >> 18;
    int r5 = (t12 - o1) >> 18;
    int r3 = (t13 + o0) >> 18;
    int r4 = (t13 - o0) >> 18;
    int k;
    int vals[8];
    vals[0] = r0; vals[1] = r1; vals[2] = r2; vals[3] = r3;
    vals[4] = r4; vals[5] = r5; vals[6] = r6; vals[7] = r7;
    for (k = 0; k < 8; k++) {
      int v = vals[k] + 128;
      if (v < 0) v = 0;
      if (v > 255) v = 255;
      pixels[k * 8 + col] = (unsigned char)v;
    }
  }
}

int main(void) {
  int blk, i;
  unsigned check = 0;
  for (blk = 0; blk < 4; blk++) {
    /* run/level decode of synthetic entropy data into zigzag order */
    for (i = 0; i < 64; i++) coef[i] = 0;
    int pos = 0;
    int x = 0x1234 + blk * 977;
    coef[0] = ((x >> 3) % 60 - 30) * quant[0];  /* DC */
    while (pos < 40) {
      x = x * 1103515245 + 12345;
      int run = (x >> 16) & 7;
      int level = ((x >> 20) % 17) - 8;
      pos += run + 1;
      if (pos >= 64) break;
      coef[zigzag[pos]] = level * quant[zigzag[pos]];
    }
    idct_rows();
    idct_cols();
    for (i = 0; i < 64; i++) check = check * 31 + pixels[i];
  }
  return (int)(check & 0x7FFFFFFF);
}
)CC";

// ---------------------------------------------------------------------------
// MPEG-2: the motion-vector decoding kernel (CHStone's "motion"): a bit
// buffer, variable-length decode of motion codes, residual decode, and the
// MPEG-2 prediction/wraparound arithmetic of decode_motion_vector().
// ---------------------------------------------------------------------------
const char* kMpeg2Source = R"CC(
#define NBITS 2048

unsigned char stream[256];
int bitpos;

unsigned getbits(int n) {
  unsigned v = 0;
  int i;
  for (i = 0; i < n; i++) {
    unsigned byte = stream[(bitpos >> 3) & 255];
    unsigned bit = (byte >> (7 - (bitpos & 7))) & 1;
    v = (v << 1) | bit;
    bitpos++;
  }
  return v;
}

/* motion_code VLC: simplified MPEG-2 table B-10 shape: count leading zeros */
int get_motion_code(void) {
  if (getbits(1)) return 0;
  int zeros = 1;
  while (zeros < 10 && getbits(1) == 0) zeros++;
  int mag = zeros + (int)getbits(1);
  int sign = (int)getbits(1);
  return sign ? -mag : mag;
}

int pred0; int pred1;

int decode_mv(int rsize, int pred) {
  int f = 1 << rsize;
  int high = (16 * f) - 1;
  int low = -16 * f;
  int range = 32 * f;
  int code = get_motion_code();
  int residual = rsize ? (int)getbits(rsize) : 0;
  int delta;
  if (code > 0) delta = ((code - 1) * f) + residual + 1;
  else if (code < 0) delta = -(((-code - 1) * f) + residual + 1);
  else delta = 0;
  int v = pred + delta;
  if (v > high) v -= range;
  if (v < low) v += range;
  return v;
}

int main(void) {
  int i;
  unsigned x = 0xACE1u;
  for (i = 0; i < 256; i++) {
    x = x * 69069u + 1u;
    stream[i] = (unsigned char)(x >> 24);
  }
  bitpos = 0;
  pred0 = 0; pred1 = 0;
  unsigned check = 0;
  int mb;
  for (mb = 0; mb < 120; mb++) {
    int rsize = mb % 3;
    pred0 = decode_mv(rsize, pred0);
    pred1 = decode_mv(rsize, pred1);
    check = check * 131 + (unsigned)(pred0 + 2048);
    check = check * 131 + (unsigned)(pred1 + 2048);
    if (bitpos > NBITS - 64) bitpos = 0;
  }
  return (int)(check & 0x7FFFFFFF);
}
)CC";

// ---------------------------------------------------------------------------
// SHA: SHA-1 over a 384-byte synthetic message with real padding and the
// 80-round compression function, matching CHStone's sha structure.
// ---------------------------------------------------------------------------
const char* kShaSource = R"CC(
#define MSGLEN 384

unsigned char msg[MSGLEN];
unsigned W[80];
unsigned H0; unsigned H1; unsigned H2; unsigned H3; unsigned H4;
unsigned char block[64];

unsigned rol(unsigned x, int n) {
  return (x << n) | (x >> (32 - n));
}

void sha_transform(void) {
  int t;
  for (t = 0; t < 16; t++) {
    W[t] = ((unsigned)block[t * 4] << 24) | ((unsigned)block[t * 4 + 1] << 16) |
           ((unsigned)block[t * 4 + 2] << 8) | (unsigned)block[t * 4 + 3];
  }
  for (t = 16; t < 80; t++)
    W[t] = rol(W[t - 3] ^ W[t - 8] ^ W[t - 14] ^ W[t - 16], 1);
  unsigned a = H0; unsigned b = H1; unsigned c = H2; unsigned d = H3; unsigned e = H4;
  for (t = 0; t < 80; t++) {
    unsigned f; unsigned k;
    if (t < 20) { f = (b & c) | ((~b) & d); k = 0x5A827999u; }
    else if (t < 40) { f = b ^ c ^ d; k = 0x6ED9EBA1u; }
    else if (t < 60) { f = (b & c) | (b & d) | (c & d); k = 0x8F1BBCDCu; }
    else { f = b ^ c ^ d; k = 0xCA62C1D6u; }
    unsigned tmp = rol(a, 5) + f + e + k + W[t];
    e = d; d = c; c = rol(b, 30); b = a; a = tmp;
  }
  H0 += a; H1 += b; H2 += c; H3 += d; H4 += e;
}

int main(void) {
  int i;
  unsigned x = 0xBEEF1234u;
  for (i = 0; i < MSGLEN; i++) {
    x = x * 1664525u + 1013904223u;
    msg[i] = (unsigned char)(x >> 21);
  }
  H0 = 0x67452301u; H1 = 0xEFCDAB89u; H2 = 0x98BADCFEu;
  H3 = 0x10325476u; H4 = 0xC3D2E1F0u;
  /* full 64-byte blocks */
  int off = 0;
  while (off + 64 <= MSGLEN) {
    for (i = 0; i < 64; i++) block[i] = msg[off + i];
    sha_transform();
    off += 64;
  }
  /* padding: MSGLEN is a multiple of 64, so one extra block */
  for (i = 0; i < 64; i++) block[i] = 0;
  block[0] = 0x80;
  unsigned bits = MSGLEN * 8;
  block[60] = (unsigned char)(bits >> 24);
  block[61] = (unsigned char)(bits >> 16);
  block[62] = (unsigned char)(bits >> 8);
  block[63] = (unsigned char)bits;
  sha_transform();
  unsigned digest = H0 ^ H1 ^ H2 ^ H3 ^ H4;
  return (int)(digest & 0x7FFFFFFF);
}
)CC";

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------
const std::vector<KernelInfo>& chstoneKernels() {
  static const std::vector<KernelInfo> kernels = {
      {"mips", "RISC interpreter running a bubble-sort program", kMipsSource},
      {"adpcm", "IMA ADPCM encode/decode with the 89-entry step table", kAdpcmSource},
      {"aes", "AES-128 ECB: generated S-box, key expansion, 10-round encrypt", kAesSource},
      {"blowfish", "16-round Blowfish Feistel cipher, CBC chained", kBlowfishSource},
      {"gsm", "GSM 06.10 LPC: autocorrelation + Schur reflection coefficients",
       kGsmSourceReal},
      {"jpeg", "JPEG back-end: run/level decode, dequant, islow 2D IDCT", kJpegSource},
      {"mpeg2", "MPEG-2 motion-vector VLC decoding with prediction wraparound",
       kMpeg2Source},
      {"sha", "SHA-1 with real padding over a 384-byte message", kShaSource},
  };
  return kernels;
}

const KernelInfo* findKernel(const std::string& name) {
  for (const auto& k : chstoneKernels())
    if (name == k.name) return &k;
  return nullptr;
}

}  // namespace twill
