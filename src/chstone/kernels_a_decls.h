// Kernel sources defined in kernels_a.cpp, consumed by the registry in
// kernels_b.cpp.
#pragma once

namespace twill {
extern const char* kMipsSource;
extern const char* kAdpcmSource;
extern const char* kAesSource;
extern const char* kBlowfishSource;
}  // namespace twill
