// Kernels part 1: MIPS, ADPCM, AES, Blowfish.
#include "src/chstone/kernels.h"

namespace twill {

// ---------------------------------------------------------------------------
// MIPS: a small RISC interpreter executing a hand-assembled bubble sort,
// mirroring CHStone's mips (an ISA simulator running a sort program).
// Encoding: op*0x1000000 + a*0x10000 + b*0x100 + c.
// ---------------------------------------------------------------------------
const char* kMipsSource = R"CC(
#define OP_HALT 0
#define OP_ADD  1
#define OP_ADDI 2
#define OP_SUB  3
#define OP_SLT  4
#define OP_LW   5
#define OP_SW   6
#define OP_BEQ  7
#define OP_BNE  8
#define OP_J    9

/* Bubble sort of mem[0..7]; see encoding note above. */
const unsigned imem[18] = {
  0x02010000, /*  0: addi r1,r0,0   ; i = 0        */
  0x02020000, /*  1: addi r2,r0,0   ; j = 0 (outer) */
  0x02030007, /*  2: addi r3,r0,7                  */
  0x03030301, /*  3: sub  r3,r3,r1  ; r3 = 7-i     */
  0x04040203, /*  4: slt  r4,r2,r3  ; j < 7-i ?    */
  0x07040008, /*  5: beq  r4,r0,+8  ; -> 14        */
  0x05050200, /*  6: lw   r5,0(r2)                 */
  0x05060201, /*  7: lw   r6,1(r2)                 */
  0x04070605, /*  8: slt  r7,r6,r5                 */
  0x07070002, /*  9: beq  r7,r0,+2  ; -> 12        */
  0x06060200, /* 10: sw   r6,0(r2)                 */
  0x06050201, /* 11: sw   r5,1(r2)                 */
  0x02020201, /* 12: addi r2,r2,1   ; j++          */
  0x09000002, /* 13: j    2                        */
  0x02010101, /* 14: addi r1,r1,1   ; i++          */
  0x02080007, /* 15: addi r8,r0,7                  */
  0x080108F0, /* 16: bne  r1,r8,-16 ; -> 1         */
  0x00000000  /* 17: halt                          */
};

int reg[16];
int mem[8];

int run_program() {
  int pc = 0;
  int running = 1;
  int steps = 0;
  while (running && steps < 4000) {
    unsigned inst = imem[pc];
    unsigned op = inst >> 24;
    unsigned a = (inst >> 16) & 0xFF;
    unsigned b = (inst >> 8) & 0xFF;
    unsigned c = inst & 0xFF;
    int simm = (int)(char)c;
    pc = pc + 1;
    switch (op) {
      case OP_HALT: running = 0; break;
      case OP_ADD:  reg[a] = reg[b] + reg[c]; break;
      case OP_ADDI: reg[a] = reg[b] + simm; break;
      case OP_SUB:  reg[a] = reg[b] - reg[c]; break;
      case OP_SLT:  reg[a] = reg[b] < reg[c] ? 1 : 0; break;
      case OP_LW:   reg[a] = mem[reg[b] + simm]; break;
      case OP_SW:   mem[reg[b] + simm] = reg[a]; break;
      case OP_BEQ:  if (reg[a] == reg[b]) pc = pc + simm; break;
      case OP_BNE:  if (reg[a] != reg[b]) pc = pc + simm; break;
      case OP_J:    pc = (int)c; break;
    }
    reg[0] = 0;
    steps++;
  }
  return steps;
}

int main(void) {
  unsigned check = 0;
  int round;
  for (round = 0; round < 4; round++) {
    int k;
    for (k = 0; k < 8; k++) mem[k] = ((k * 7 + round * 3 + 5) % 19) - 4;
    for (k = 0; k < 16; k++) reg[k] = 0;
    int steps = run_program();
    for (k = 0; k < 8; k++) check = check * 31 + (unsigned)(mem[k] + 16);
    /* sorted ascending: verify order robustly */
    for (k = 0; k < 7; k++)
      if (mem[k] > mem[k + 1]) check = check ^ 0xDEAD0000;
    check += (unsigned)steps;
  }
  return (int)(check & 0x7FFFFFFF);
}
)CC";

// ---------------------------------------------------------------------------
// ADPCM: IMA ADPCM encode + decode over a synthetic PCM buffer, with the
// standard 89-entry step-size table and index table (as in CHStone's adpcm).
// ---------------------------------------------------------------------------
const char* kAdpcmSource = R"CC(
const int stepTable[89] = {
  7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41,
  45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190,
  209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658, 724,
  796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
  2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132,
  7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818, 18500,
  20350, 22385, 24623, 27086, 29794, 32767
};
const int indexTable[16] = { -1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8 };

#define N 160

int pcm[N];
unsigned char code[N];
int rebuilt[N];

int enc_valprev; int enc_index;
int dec_valprev; int dec_index;

unsigned char adpcm_encode_sample(int sample) {
  int step = stepTable[enc_index];
  int diff = sample - enc_valprev;
  unsigned delta = 0;
  if (diff < 0) { delta = 8; diff = -diff; }
  if (diff >= step) { delta |= 4; diff -= step; }
  step >>= 1;
  if (diff >= step) { delta |= 2; diff -= step; }
  step >>= 1;
  if (diff >= step) { delta |= 1; }
  /* reconstruct like the decoder to stay in sync */
  int vpdiff = stepTable[enc_index] >> 3;
  if (delta & 4) vpdiff += stepTable[enc_index];
  if (delta & 2) vpdiff += stepTable[enc_index] >> 1;
  if (delta & 1) vpdiff += stepTable[enc_index] >> 2;
  if (delta & 8) enc_valprev -= vpdiff; else enc_valprev += vpdiff;
  if (enc_valprev > 32767) enc_valprev = 32767;
  if (enc_valprev < -32768) enc_valprev = -32768;
  enc_index += indexTable[delta];
  if (enc_index < 0) enc_index = 0;
  if (enc_index > 88) enc_index = 88;
  return (unsigned char)delta;
}

int adpcm_decode_sample(unsigned delta) {
  int step = stepTable[dec_index];
  int vpdiff = step >> 3;
  if (delta & 4) vpdiff += step;
  if (delta & 2) vpdiff += step >> 1;
  if (delta & 1) vpdiff += step >> 2;
  if (delta & 8) dec_valprev -= vpdiff; else dec_valprev += vpdiff;
  if (dec_valprev > 32767) dec_valprev = 32767;
  if (dec_valprev < -32768) dec_valprev = -32768;
  dec_index += indexTable[delta & 15];
  if (dec_index < 0) dec_index = 0;
  if (dec_index > 88) dec_index = 88;
  return dec_valprev;
}

int main(void) {
  int i;
  /* synthetic speech-like waveform */
  int x = 12345;
  for (i = 0; i < N; i++) {
    x = x * 1103515245 + 12345;
    int tri = (i % 40) < 20 ? (i % 40) * 800 : (40 - i % 40) * 800;
    pcm[i] = tri - 8000 + ((x >> 20) % 513);
  }
  enc_valprev = 0; enc_index = 0;
  for (i = 0; i < N; i++) code[i] = adpcm_encode_sample(pcm[i]);
  dec_valprev = 0; dec_index = 0;
  for (i = 0; i < N; i++) rebuilt[i] = adpcm_decode_sample(code[i]);
  /* checksum codes + reconstruction error energy */
  unsigned check = 0;
  int err = 0;
  for (i = 0; i < N; i++) {
    check = check * 17 + code[i];
    int d = pcm[i] - rebuilt[i];
    if (d < 0) d = -d;
    err += d >> 4;
  }
  return (int)((check ^ (unsigned)err) & 0x7FFFFFFF);
}
)CC";

// ---------------------------------------------------------------------------
// AES: AES-128 ECB over two blocks. The S-box is derived at startup from
// GF(256) log/antilog tables (generator 3) + the affine transform, instead
// of a 256-literal table — identical values, and the table-driven round
// structure (SubBytes/ShiftRows/MixColumns/AddRoundKey) matches CHStone aes.
// ---------------------------------------------------------------------------
const char* kAesSource = R"CC(
unsigned char sbox[256];
unsigned char alog[256];
unsigned char logt[256];

unsigned char key[16];
unsigned char roundKeys[176];
unsigned char state[16];

unsigned char xtime(unsigned a) {
  unsigned r = a << 1;
  if (a & 0x80) r ^= 0x1B;
  return (unsigned char)(r & 0xFF);
}

void build_sbox(void) {
  int i;
  unsigned p = 1;
  for (i = 0; i < 255; i++) {
    alog[i] = (unsigned char)p;
    logt[p] = (unsigned char)i;
    /* multiply p by generator 3 = p ^ xtime(p) */
    p = p ^ xtime(p);
    p &= 0xFF;
  }
  alog[255] = alog[0];
  sbox[0] = 0x63;
  for (i = 1; i < 256; i++) {
    unsigned inv = alog[255 - logt[i]];
    unsigned s = inv;
    s ^= (inv << 1) | (inv >> 7);
    s ^= (inv << 2) | (inv >> 6);
    s ^= (inv << 3) | (inv >> 5);
    s ^= (inv << 4) | (inv >> 4);
    s = (s & 0xFF) ^ 0x63;
    sbox[i] = (unsigned char)s;
  }
}

void expand_key(void) {
  int i;
  unsigned rcon = 1;
  for (i = 0; i < 16; i++) roundKeys[i] = key[i];
  for (i = 16; i < 176; i += 4) {
    unsigned char t0 = roundKeys[i - 4];
    unsigned char t1 = roundKeys[i - 3];
    unsigned char t2 = roundKeys[i - 2];
    unsigned char t3 = roundKeys[i - 1];
    if (i % 16 == 0) {
      unsigned char tmp = t0;
      t0 = sbox[t1] ^ (unsigned char)rcon;
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[tmp];
      rcon = xtime(rcon);
    }
    roundKeys[i] = roundKeys[i - 16] ^ t0;
    roundKeys[i + 1] = roundKeys[i - 15] ^ t1;
    roundKeys[i + 2] = roundKeys[i - 14] ^ t2;
    roundKeys[i + 3] = roundKeys[i - 13] ^ t3;
  }
}

void add_round_key(int round) {
  int i;
  for (i = 0; i < 16; i++) state[i] ^= roundKeys[round * 16 + i];
}

void sub_bytes(void) {
  int i;
  for (i = 0; i < 16; i++) state[i] = sbox[state[i]];
}

void shift_rows(void) {
  unsigned char t;
  /* row 1: rotate left by 1 (state is column-major: row r, col c at c*4+r) */
  t = state[1]; state[1] = state[5]; state[5] = state[9]; state[9] = state[13]; state[13] = t;
  /* row 2: rotate by 2 */
  t = state[2]; state[2] = state[10]; state[10] = t;
  t = state[6]; state[6] = state[14]; state[14] = t;
  /* row 3: rotate left by 3 (= right by 1) */
  t = state[15]; state[15] = state[11]; state[11] = state[7]; state[7] = state[3]; state[3] = t;
}

void mix_columns(void) {
  int c;
  for (c = 0; c < 4; c++) {
    unsigned char a0 = state[c * 4];
    unsigned char a1 = state[c * 4 + 1];
    unsigned char a2 = state[c * 4 + 2];
    unsigned char a3 = state[c * 4 + 3];
    unsigned char all = a0 ^ a1 ^ a2 ^ a3;
    state[c * 4] = state[c * 4] ^ all ^ xtime(a0 ^ a1);
    state[c * 4 + 1] = state[c * 4 + 1] ^ all ^ xtime(a1 ^ a2);
    state[c * 4 + 2] = state[c * 4 + 2] ^ all ^ xtime(a2 ^ a3);
    state[c * 4 + 3] = state[c * 4 + 3] ^ all ^ xtime(a3 ^ a0);
  }
}

void encrypt_block(void) {
  int round;
  add_round_key(0);
  for (round = 1; round < 10; round++) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

int main(void) {
  int b, i;
  unsigned check = 0;
  build_sbox();
  for (i = 0; i < 16; i++) key[i] = (unsigned char)(i * 17 + 3);
  expand_key();
  for (b = 0; b < 3; b++) {
    for (i = 0; i < 16; i++) state[i] = (unsigned char)(b * 31 + i * 7 + 1);
    encrypt_block();
    for (i = 0; i < 16; i++) check = check * 257 + state[i];
  }
  return (int)(check & 0x7FFFFFFF);
}
)CC";

// ---------------------------------------------------------------------------
// Blowfish: 16-round Feistel cipher with the real Blowfish structure
// (P-array keying, four S-boxes, F function). Deviation from CHStone: the
// hex digits of pi that seed P and S are generated by a fixed LCG instead of
// shipping 1042 literal constants — the dataflow (table lookups + xor/add
// Feistel rounds) is identical.
// ---------------------------------------------------------------------------
const char* kBlowfishSource = R"CC(
unsigned P[18];
unsigned S[1024];  /* four 256-entry boxes, flattened */
unsigned char keybytes[8];

unsigned bf_f(unsigned x) {
  unsigned a = (x >> 24) & 0xFF;
  unsigned b = (x >> 16) & 0xFF;
  unsigned c = (x >> 8) & 0xFF;
  unsigned d = x & 0xFF;
  return ((S[a] + S[256 + b]) ^ S[512 + c]) + S[768 + d];
}

unsigned encL; unsigned encR;

void bf_encrypt(unsigned xl, unsigned xr) {
  int i;
  for (i = 0; i < 16; i++) {
    xl ^= P[i];
    xr ^= bf_f(xl);
    unsigned t = xl; xl = xr; xr = t;
  }
  unsigned t2 = xl; xl = xr; xr = t2;
  xr ^= P[16];
  xl ^= P[17];
  encL = xl; encR = xr;
}

void bf_init(void) {
  /* seed boxes from an LCG (stand-in for pi's hex digits) */
  unsigned x = 0x243F6A88u;  /* first pi word, as a nod to the original */
  int i;
  for (i = 0; i < 18; i++) { x = x * 1664525u + 1013904223u; P[i] = x; }
  for (i = 0; i < 1024; i++) { x = x * 1664525u + 1013904223u; S[i] = x; }
  /* key the P-array */
  for (i = 0; i < 18; i++) {
    unsigned k = 0;
    int j;
    for (j = 0; j < 4; j++) k = (k << 8) | keybytes[(i * 4 + j) % 8];
    P[i] ^= k;
  }
  /* run the keystream through P and S like real Blowfish */
  unsigned l = 0; unsigned r = 0;
  for (i = 0; i < 18; i += 2) {
    bf_encrypt(l, r);
    l = encL; r = encR;
    P[i] = l; P[i + 1] = r;
  }
  for (i = 0; i < 1024; i += 2) {
    bf_encrypt(l, r);
    l = encL; r = encR;
    S[i] = l; S[i + 1] = r;
  }
}

int main(void) {
  int i;
  for (i = 0; i < 8; i++) keybytes[i] = (unsigned char)(0x11 * (i + 1));
  bf_init();
  /* CBC-style chain over 24 blocks of synthetic plaintext */
  unsigned check = 0;
  unsigned cl = 0x01234567u;
  unsigned cr = 0x89ABCDEFu;
  for (i = 0; i < 24; i++) {
    unsigned pl = (unsigned)(i * 0x9E3779B9u);
    unsigned pr = (unsigned)(i * 0x7F4A7C15u + 0x1234u);
    bf_encrypt(pl ^ cl, pr ^ cr);
    cl = encL; cr = encR;
    check = (check * 33) ^ cl ^ (cr >> 7);
  }
  return (int)(check & 0x7FFFFFFF);
}
)CC";

}  // namespace twill
