// CHStone-like benchmark kernels (§6 of the thesis).
//
// The thesis evaluates on 8 of the 12 CHStone benchmarks (DFAdd/DFDiv/
// DFMul/DFSine are excluded because Twill does not support 64-bit values —
// the same restriction applies here). The original CHStone sources are not
// redistributable inside this repo, so each kernel is a functionally
// equivalent re-implementation in the supported C subset that preserves the
// original's computational skeleton: the same algorithm, the same
// table-driven inner loops, comparable dependence structure. Deviations are
// noted per kernel (e.g. Blowfish's pi-digit boxes are seeded from an LCG).
// Every kernel is self-checking: main() returns a checksum.
#pragma once

#include <string>
#include <vector>

namespace twill {

struct KernelInfo {
  const char* name;
  const char* description;
  const char* source;
};

/// The 8 evaluation kernels, in the thesis's table order.
const std::vector<KernelInfo>& chstoneKernels();

/// Lookup by name (nullptr if unknown).
const KernelInfo* findKernel(const std::string& name);

}  // namespace twill
