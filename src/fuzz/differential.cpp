#include "src/fuzz/differential.h"

#include "src/exec/superblock.h"
#include "src/frontend/lower.h"
#include "src/ir/interp.h"
#include "src/transforms/passes.h"

namespace twill {
namespace {

struct EngineRun {
  bool done = false;      // reached Finished or Trapped within the budget
  bool finished = false;  // Finished (else trapped)
  uint32_t result = 0;
  uint64_t retired = 0;
  std::string trap;
};

EngineRun runReference(Module& m, uint64_t stepBudget) {
  EngineRun r;
  Memory mem;
  Layout lay;
  if (!lay.build(m, mem)) return r;
  FunctionalChannels chans;
  RefExecState st(m, lay, mem, chans, m.findFunction("main"));
  StepResult sr{};
  for (uint64_t guard = 0; guard < stepBudget; ++guard) {
    sr = st.step();
    if (sr.status != StepStatus::Ran) break;
  }
  if (sr.status == StepStatus::Finished || sr.status == StepStatus::Trapped) {
    r.done = true;
    r.finished = sr.status == StepStatus::Finished;
    r.result = r.finished ? st.result() : 0;
    r.retired = st.retired();
    r.trap = r.finished ? std::string() : st.trapMessage();
  }
  return r;
}

EngineRun runDecoded(Module& m, uint64_t stepBudget) {
  EngineRun r;
  Memory mem;
  Layout lay;
  if (!lay.build(m, mem)) return r;
  DecodedProgram prog(m, lay);
  FunctionalChannels chans;
  ExecState st(prog, mem, chans, m.findFunction("main"));
  StepResult sr{};
  for (uint64_t guard = 0; guard < stepBudget; ++guard) {
    sr = st.step();
    if (sr.status != StepStatus::Ran) break;
  }
  if (sr.status == StepStatus::Finished || sr.status == StepStatus::Trapped) {
    r.done = true;
    r.finished = sr.status == StepStatus::Finished;
    r.result = r.finished ? st.result() : 0;
    r.retired = st.retired();
    r.trap = r.finished ? std::string() : st.trapMessage();
  }
  return r;
}

EngineRun runSuperblock(Module& m, uint64_t stepBudget, uint64_t budgetPerCall) {
  EngineRun r;
  Memory mem;
  Layout lay;
  if (!lay.build(m, mem)) return r;
  DecodedProgram prog(m, lay);
  FunctionalChannels chans;
  ExecState st(prog, mem, chans, m.findFunction("main"));
  while (st.retired() < stepBudget) {
    FunctionalSuperModel model{budgetPerCall};
    switch (st.runSuper(model)) {
      case SuperRunStatus::kFinished:
        r.done = true;
        r.finished = true;
        r.result = st.result();
        r.retired = st.retired();
        return r;
      case SuperRunStatus::kTrapped:
        r.done = true;
        r.finished = false;
        r.retired = st.retired();
        r.trap = st.trapMessage();
        return r;
      case SuperRunStatus::kNeedStep: {
        // Channel op (absorbed by FunctionalChannels here) or a poisoned
        // record: one per-inst step, then back to the trace runner.
        StepResult sr = st.step();
        if (sr.status == StepStatus::Finished || sr.status == StepStatus::Trapped) {
          r.done = true;
          r.finished = sr.status == StepStatus::Finished;
          r.result = r.finished ? st.result() : 0;
          r.retired = st.retired();
          r.trap = r.finished ? std::string() : st.trapMessage();
          return r;
        }
        if (sr.status == StepStatus::Blocked) return r;  // cannot happen: no fabric
        break;
      }
      case SuperRunStatus::kBudget:
        break;  // resume with a fresh per-call budget
    }
  }
  return r;
}

std::string describe(const char* name, const EngineRun& r) {
  if (!r.done) return std::string(name) + ": did not finish within the step budget";
  std::string s = std::string(name) + ": ";
  if (r.finished)
    s += "result=" + std::to_string(r.result);
  else
    s += "trap='" + r.trap + "'";
  s += " retired=" + std::to_string(r.retired);
  return s;
}

bool sameRun(const EngineRun& a, const EngineRun& b) {
  return a.done && b.done && a.finished == b.finished && a.result == b.result &&
         a.retired == b.retired && a.trap == b.trap;
}

}  // namespace

DifferentialResult runDifferential(const std::string& source, uint64_t stepBudget) {
  DifferentialResult out;
  Module m;
  DiagEngine diag;
  if (!compileC(source, m, diag)) {
    out.detail = "compile failed:\n" + diag.str();
    return out;
  }
  runDefaultPipeline(m);
  if (!m.findFunction("main")) {
    out.detail = "no main function";
    return out;
  }
  out.compiled = true;

  const EngineRun ref = runReference(m, stepBudget);
  const EngineRun dec = runDecoded(m, stepBudget);
  const EngineRun supFull = runSuperblock(m, stepBudget, UINT64_MAX);
  // A 3-op budget forces a stop/resume at nearly every op boundary,
  // exercising the kBudget pc/frame write-back paths.
  const EngineRun supResume = runSuperblock(m, stepBudget, 3);

  if (sameRun(ref, dec) && sameRun(ref, supFull) && sameRun(ref, supResume)) {
    out.agree = true;
    return out;
  }
  out.detail = describe("reference", ref) + "\n" + describe("decoded", dec) + "\n" +
               describe("superblock", supFull) + "\n" + describe("superblock(resume)", supResume);
  return out;
}

}  // namespace twill
