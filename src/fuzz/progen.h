// Deterministic random-program generator for the differential fuzzing
// harness (tests) and the libFuzzer pipeline harness (fuzz/).
//
// Programs are valid by construction in the supported C subset and free of
// the language's only runtime traps (out-of-range memory access, call-depth
// blowup): every variable is initialized before use, every array index is
// masked to the array's power-of-two size, loops are bounded counted `for`
// loops whose induction variable the body never writes, and calls only name
// earlier-defined functions (no recursion). Division and shifts need no
// guarding — the language defines x/0 == x%0 == 0 and masks shift amounts
// (src/exec/eval.h). A generated program therefore terminates and computes
// a checksum on every conforming engine; any divergence between engines is
// an engine bug, not an input quirk.
#pragma once

#include <cstdint>
#include <string>

namespace twill {

struct ProgenOptions {
  unsigned maxFunctions = 4;    // helper functions besides main
  unsigned maxGlobals = 4;      // global scalars + arrays
  unsigned maxStmtsPerBlock = 5;
  unsigned maxBlockDepth = 3;   // if/for/switch/while statement nesting
  unsigned maxExprDepth = 4;
  unsigned maxLoopTrip = 8;     // constant trip count per counted loop
  /// Dense-`switch` emission: up to this many consecutive cases over a
  /// masked selector (0 disables). lowerSwitch expands these into long
  /// compare/branch chains, the densest block-surgery traffic the frontend
  /// can produce.
  unsigned maxSwitchCases = 6;
  /// Counted `while`/`do` loops alongside `for` (their exit tests sit at
  /// opposite ends, so both rotation shapes reach the loop passes).
  bool genWhileLoops = true;
};

/// Generates one self-checking program (main returns a checksum) from
/// `seed`. Same seed + options => byte-identical source, on every platform.
std::string generateProgram(uint64_t seed, const ProgenOptions& opts = {});

}  // namespace twill
