#include "src/fuzz/harness.h"

#include <string>

#include "src/driver/driver.h"
#include "src/driver/request.h"
#include "src/frontend/lexer.h"
#include "src/frontend/parser.h"
#include "src/support/diag.h"
#include "src/support/limits.h"

namespace twill {
namespace {

/// Tight, wall-clock-free ceilings: a fuzz input may do anything, but only
/// a little of it. No stageTimeoutMs — replay must be deterministic.
ResourceLimits fuzzLimits() {
  ResourceLimits lim;
  lim.maxTokens = 1u << 17;
  lim.maxAstNodes = 1u << 16;
  lim.maxNestingDepth = 200;
  lim.maxIrInstructions = 1u << 17;
  lim.maxInterpSteps = 1u << 22;
  lim.memLimitBytes = 1u << 20;
  return lim;
}

}  // namespace

void fuzzLexer(const uint8_t* data, size_t size) {
  const std::string source(reinterpret_cast<const char*>(data), size);
  DiagEngine diag;
  const ResourceLimits lim = fuzzLimits();
  Lexer lex(source, diag, &lim);
  (void)lex.tokenize();
}

void fuzzParser(const uint8_t* data, size_t size) {
  const std::string source(reinterpret_cast<const char*>(data), size);
  DiagEngine diag;
  const ResourceLimits lim = fuzzLimits();
  Lexer lex(source, diag, &lim);
  auto toks = lex.tokenize();
  if (diag.hasErrors()) return;
  Parser parser(std::move(toks), diag, &lim);
  (void)parser.parse();
}

void fuzzRequest(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  CompileRequest req;
  std::string error;
  if (!parseCompileRequest(text, req, error)) return;
  // Valid documents exercise the key builders too (the daemon computes both
  // on every job).
  (void)compileCacheKey(req);
  (void)requestCacheKey(req);
}

void fuzzPipeline(const uint8_t* data, size_t size) {
  const std::string source(reinterpret_cast<const char*>(data), size);
  DriverOptions opts;
  opts.limits = fuzzLimits();
  // The simulators' own knobs bound cycle counts; the deadlock window must
  // stay below maxCycles or a livelocked input would spin to the larger of
  // the two.
  opts.sim.maxCycles = 1u << 22;
  opts.sim.deadlockWindow = 1u << 20;
  (void)runBenchmark("fuzz", source, opts);
}

}  // namespace twill
