// Differential execution property: one compiled module, every execution
// tier, identical observable behaviour.
//
// Generalizes exec_test's hand-built equivalence checks: compile a source
// program once, then run `main` on the tree-walking reference
// (RefExecState), the pre-decoded per-inst engine (ExecState::step) and the
// superblock trace runner — the latter both whole-trace and with a
// 3-step budget forcing a stop/resume at every op boundary, which exercises
// the kBudget write-back paths the schedulers rely on. All four runs must
// agree on finished-vs-trapped, the result, the retired-op count, and the
// trap message. The superblock dispatcher flavour (threaded vs portable) is
// a compile-time choice (TWILL_SUPER_NO_THREADED), so the CI matrix covers
// both with this same code.
#pragma once

#include <cstdint>
#include <string>

namespace twill {

struct DifferentialResult {
  bool compiled = false;  // source compiled + passed the default pipeline
  bool agree = false;     // every engine produced identical observables
  std::string detail;     // compile diagnostics or first divergence
};

/// Compiles `source` (default pipeline, default resource limits) and checks
/// the cross-engine property. `stepBudget` bounds every engine run; a
/// program still running after that many retired ops counts as a
/// disagreement (generated programs are terminating by construction).
DifferentialResult runDifferential(const std::string& source, uint64_t stepBudget = 1ull << 24);

}  // namespace twill
