// Total entry points for fuzzing untrusted source text.
//
// Each function treats `data` as a (not necessarily NUL-terminated, not
// necessarily valid) C source file and drives one slice of the pipeline
// under tight ResourceLimits. They are shared verbatim by the libFuzzer
// harnesses (fuzz/fuzz_*.cpp, built with -DTWILL_FUZZ=ON) and by the
// corpus-replay regression test (tests/fuzz_test.cpp), so every checked-in
// crasher is replayed by the ordinary test suite on every toolchain — the
// contract is simply "returns, whatever the bytes".
//
// Limits are deliberately tight (and wall-clock free, for determinism):
// fuzzing throughput depends on each input finishing in microseconds, not
// on generosity toward pathological inputs.
#pragma once

#include <cstddef>
#include <cstdint>

namespace twill {

/// Lexes the input (macro expansion included) under a tight token cap.
void fuzzLexer(const uint8_t* data, size_t size);

/// Lexes + parses the input under tight token/AST/nesting caps.
void fuzzParser(const uint8_t* data, size_t size);

/// Runs the full driver pipeline (compile, optimize, DSWP, verify, HLS,
/// all three simulated flows) under tight step/cycle/memory caps.
void fuzzPipeline(const uint8_t* data, size_t size);

/// Treats the input as a CompileRequest JSON document (the twilld
/// `POST /v1/jobs` body / `twillc --request` file): JSON reader with its
/// depth cap, request validation, and — when the document is valid — the
/// cache-key builders. Never runs the driver: the document surface is the
/// target, not the program inside it.
void fuzzRequest(const uint8_t* data, size_t size);

}  // namespace twill
