#include "src/fuzz/progen.h"

#include <vector>

namespace twill {
namespace {

/// splitmix64: tiny, fully deterministic, platform-independent. The
/// generator must not depend on libc rand() or std::mt19937 distribution
/// details, or checked-in seeds would replay differently across toolchains.
class Rng {
public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n). n == 0 is treated as 1.
  uint32_t below(uint32_t n) { return n ? static_cast<uint32_t>(next() % n) : 0; }

  bool chance(uint32_t percent) { return below(100) < percent; }

private:
  uint64_t state_;
};

struct Var {
  std::string name;
  unsigned arraySize = 0;  // 0 = scalar; otherwise a power of two
  bool writable = true;    // loop induction variables are read-only
};

class Generator {
public:
  Generator(uint64_t seed, const ProgenOptions& opts) : rng_(seed), opts_(opts) {}

  std::string run() {
    emitGlobals();
    const unsigned nFuncs = 1 + rng_.below(opts_.maxFunctions);
    for (unsigned i = 0; i < nFuncs; ++i) emitFunction("f" + std::to_string(i));
    emitMain();
    return out_;
  }

private:
  // --- expressions ---------------------------------------------------------

  /// A variable readable in the current scope (globals + locals).
  const Var* pickReadable() {
    const size_t total = globals_.size() + locals_.size();
    if (total == 0) return nullptr;
    const size_t k = rng_.below(static_cast<uint32_t>(total));
    return k < globals_.size() ? &globals_[k] : &locals_[k - globals_.size()];
  }

  const Var* pickWritable() {
    std::vector<const Var*> cand;
    for (const Var& v : globals_)
      if (v.writable) cand.push_back(&v);
    for (const Var& v : locals_)
      if (v.writable) cand.push_back(&v);
    if (cand.empty()) return nullptr;
    return cand[rng_.below(static_cast<uint32_t>(cand.size()))];
  }

  /// Reference to `v` as an rvalue; array elements are index-masked so the
  /// access is in range whatever the index expression computes.
  std::string varRead(const Var& v, unsigned depth) {
    if (v.arraySize == 0) return v.name;
    return v.name + "[(" + expr(depth) + ") & " + std::to_string(v.arraySize - 1) + "]";
  }

  std::string expr(unsigned depth) {
    if (depth >= opts_.maxExprDepth || rng_.chance(30)) {
      // Leaf: a literal or a variable read.
      const Var* v = rng_.chance(60) ? pickReadable() : nullptr;
      if (v) return varRead(*v, opts_.maxExprDepth);  // index exprs stay leaf-ish
      return std::to_string(rng_.below(1000));
    }
    switch (rng_.below(10)) {
      case 0: return "(-" + expr(depth + 1) + ")";
      case 1: return "(~" + expr(depth + 1) + ")";
      case 2: return "(!" + expr(depth + 1) + ")";
      case 3: {
        // Conditional expression.
        return "(" + expr(depth + 1) + " ? " + expr(depth + 1) + " : " + expr(depth + 1) + ")";
      }
      case 4:
        if (!funcs_.empty() && callBudget_ > 0) {
          --callBudget_;
          const std::string& f = funcs_[rng_.below(static_cast<uint32_t>(funcs_.size()))];
          return f + "(" + expr(depth + 1) + ", " + expr(depth + 1) + ")";
        }
        [[fallthrough]];
      default: {
        static const char* const kOps[] = {"+",  "-",  "*",  "/",  "%",  "&",  "|", "^",
                                           "<<", ">>", "<",  ">",  "<=", ">=", "==",
                                           "!=", "&&", "||"};
        const char* op = kOps[rng_.below(sizeof(kOps) / sizeof(kOps[0]))];
        return "(" + expr(depth + 1) + " " + op + " " + expr(depth + 1) + ")";
      }
    }
  }

  // --- statements ----------------------------------------------------------

  void indent() { out_.append(indent_ * 2, ' '); }

  void stmtAssign() {
    const Var* v = pickWritable();
    if (!v) return;
    indent();
    if (v->arraySize == 0) {
      out_ += v->name;
    } else {
      out_ += v->name + "[(" + expr(1) + ") & " + std::to_string(v->arraySize - 1) + "]";
    }
    static const char* const kAssignOps[] = {" = ", " += ", " ^= "};
    out_ += kAssignOps[rng_.below(3)];
    out_ += expr(0);
    out_ += ";\n";
  }

  void stmtIf(unsigned depth) {
    indent();
    out_ += "if (" + expr(1) + ") {\n";
    block(depth + 1);
    if (rng_.chance(50)) {
      indent();
      out_ += "} else {\n";
      block(depth + 1);
    }
    indent();
    out_ += "}\n";
  }

  void stmtFor(unsigned depth) {
    // Counted loop with a fresh read-only induction variable: the body can
    // read it but never write it, so termination is structural.
    const std::string iv = "i" + std::to_string(loopCounter_++);
    const unsigned trip = 1 + rng_.below(opts_.maxLoopTrip);
    indent();
    out_ += "for (int " + iv + " = 0; " + iv + " < " + std::to_string(trip) + "; " + iv +
            " = " + iv + " + 1) {\n";
    locals_.push_back({iv, 0, /*writable=*/false});
    block(depth + 1);
    locals_.pop_back();
    indent();
    out_ += "}\n";
  }

  void stmtSwitch(unsigned depth) {
    // Dense switch over a masked selector: every case value is reachable and
    // every arm breaks, so control flow stays structural. lowerSwitch turns
    // the case list into a compare/branch chain — the heaviest block
    // insert/erase traffic a frontend construct can generate.
    const unsigned nCases = 2 + rng_.below(opts_.maxSwitchCases - 1);
    indent();
    out_ += "switch ((" + expr(1) + ") & 7) {\n";
    for (unsigned c = 0; c < nCases; ++c) {
      indent();
      out_ += "case " + std::to_string(c) + ":\n";
      block(depth + 1);
      ++indent_;
      indent();
      out_ += "break;\n";
      --indent_;
    }
    indent();
    out_ += "default:\n";
    block(depth + 1);
    indent();
    out_ += "}\n";
  }

  void stmtWhile(unsigned depth, bool doWhile) {
    // Counted while/do-while: the generator owns the counter (declared here,
    // bumped as the body's last statement, read-only inside the body), so
    // termination stays structural just like stmtFor.
    const std::string iv = "w" + std::to_string(loopCounter_++);
    const unsigned trip = 1 + rng_.below(opts_.maxLoopTrip);
    indent();
    out_ += "int " + iv + " = 0;\n";
    indent();
    out_ += doWhile ? "do {\n" : ("while (" + iv + " < " + std::to_string(trip) + ") {\n");
    locals_.push_back({iv, 0, /*writable=*/false});
    block(depth + 1);
    locals_.pop_back();
    ++indent_;
    indent();
    out_ += iv + " = " + iv + " + 1;\n";
    --indent_;
    indent();
    out_ += doWhile ? ("} while (" + iv + " < " + std::to_string(trip) + ");\n") : "}\n";
  }

  void nestedStmt(unsigned depth) {
    const bool canSwitch = opts_.maxSwitchCases >= 2;
    switch (rng_.below(6)) {
      case 0:
      case 1: stmtIf(depth); return;
      case 2:
      case 3: stmtFor(depth); return;
      case 4:
        if (canSwitch) {
          stmtSwitch(depth);
          return;
        }
        [[fallthrough]];
      default:
        if (opts_.genWhileLoops) {
          stmtWhile(depth, /*doWhile=*/rng_.chance(50));
          return;
        }
        stmtFor(depth);
    }
  }

  void block(unsigned depth) {
    ++indent_;
    const size_t scopeMark = locals_.size();
    const unsigned n = 1 + rng_.below(opts_.maxStmtsPerBlock);
    for (unsigned s = 0; s < n; ++s) {
      if (depth < opts_.maxBlockDepth && rng_.chance(25)) {
        nestedStmt(depth);
      } else if (rng_.chance(20)) {
        // Fresh initialized local scoped to this block.
        const std::string name = "t" + std::to_string(localCounter_++);
        indent();
        out_ += "int " + name + " = " + expr(1) + ";\n";
        locals_.push_back({name, 0, true});
      } else {
        stmtAssign();
      }
    }
    --indent_;
    locals_.resize(scopeMark);
  }

  // --- top level -----------------------------------------------------------

  void emitGlobals() {
    const unsigned n = 1 + rng_.below(opts_.maxGlobals);
    for (unsigned i = 0; i < n; ++i) {
      const std::string name = "g" + std::to_string(i);
      if (rng_.chance(40)) {
        const unsigned size = 1u << (2 + rng_.below(4));  // 4..32 elements
        out_ += "int " + name + "[" + std::to_string(size) + "];\n";
        globals_.push_back({name, size, true});
      } else {
        out_ += "int " + name + " = " + std::to_string(rng_.below(1000)) + ";\n";
        globals_.push_back({name, 0, true});
      }
    }
    out_ += "\n";
  }

  void emitFunction(const std::string& name) {
    out_ += "int " + name + "(int a, int b) {\n";
    locals_.clear();
    locals_.push_back({"a", 0, true});
    locals_.push_back({"b", 0, true});
    locals_.push_back({"r", 0, true});
    indent_ = 1;
    indent();
    out_ += "int r = a ^ b;\n";
    callBudget_ = 4;  // calls per function body; callees are all earlier-defined
    indent_ = 0;
    block(0);
    indent_ = 1;
    indent();
    out_ += "return r;\n";
    indent_ = 0;
    out_ += "}\n\n";
    funcs_.push_back(name);  // published after emission: no self-calls
  }

  void emitMain() {
    out_ += "int main() {\n";
    locals_.clear();
    locals_.push_back({"sum", 0, true});
    indent_ = 1;
    indent();
    out_ += "int sum = 0;\n";
    callBudget_ = 6;
    indent_ = 0;
    block(0);
    indent_ = 1;
    // Fold every global into the checksum so stores anywhere are observable.
    for (const Var& g : globals_) {
      if (g.arraySize == 0) {
        indent();
        out_ += "sum = sum * 31 + " + g.name + ";\n";
      } else {
        const std::string iv = "i" + std::to_string(loopCounter_++);
        indent();
        out_ += "for (int " + iv + " = 0; " + iv + " < " + std::to_string(g.arraySize) + "; " +
                iv + " = " + iv + " + 1) sum = sum * 31 + " + g.name + "[" + iv + "];\n";
      }
    }
    indent();
    out_ += "return sum;\n";
    indent_ = 0;
    out_ += "}\n";
  }

  Rng rng_;
  ProgenOptions opts_;
  std::string out_;
  std::vector<Var> globals_;
  std::vector<Var> locals_;
  std::vector<std::string> funcs_;
  unsigned indent_ = 0;
  unsigned loopCounter_ = 0;
  unsigned localCounter_ = 0;
  int callBudget_ = 0;
};

}  // namespace

std::string generateProgram(uint64_t seed, const ProgenOptions& opts) {
  return Generator(seed, opts).run();
}

}  // namespace twill
