// Fig. 6.5 — Twill performance across hardware queue latencies, normalized
// to the 2-cycle-latency runtime.
#include "bench/bench_common.h"

using namespace twill;
using namespace twill::bench;

int main() {
  header("Fig 6.5: speedup vs queue latency (normalized to 2-cycle latency)",
         "thesis: ~27%% average slowdown at latency 128 (more than the original DSWP's 10%% "
         "at 100, because Twill flushes the pipeline at function boundaries)");

  const std::vector<unsigned>& latencies = kQueueLatencySweep;
  std::printf("%-10s", "Benchmark");
  for (unsigned l : latencies) std::printf(" %8s%-3u", "lat=", l);
  std::printf("\n");

  double slowdown128Sum = 0;
  int count = 0;
  for (const auto& k : chstoneKernels()) {
    PreparedKernel pk = prepareKernel(k, {}, 100, /*withBaseline=*/false);
    if (!pk.ok) continue;
    uint64_t baseCycles = 0;
    std::printf("%-10s", k.name);
    double last = 1.0;
    for (unsigned l : latencies) {
      SimConfig sc;
      sc.queueLatency = l;
      uint64_t cycles = runTwillCycles(pk, sc);
      if (l == 2) baseCycles = cycles;
      double norm = (cycles && baseCycles) ? static_cast<double>(baseCycles) / cycles : 0;
      std::printf(" %10.3f", norm);
      last = norm;
    }
    std::printf("\n");
    if (last > 0) {
      slowdown128Sum += (1.0 - last) * 100.0;
      ++count;
    }
  }
  if (count)
    std::printf("\nAverage slowdown at latency 128: %.1f%% (thesis: ~27%%)\n",
                slowdown128Sum / count);
  return 0;
}
