// Microbenchmarks of the runtime primitives (google-benchmark): queue and
// semaphore handshakes, bus arbitration, and end-to-end compile-flow stages.
// These verify the Ch. 4 cycle costs stay where the thesis pinned them and
// give a wall-clock view of the compiler itself.
#include <benchmark/benchmark.h>

#include <memory>

#include "src/chstone/kernels.h"
#include "src/dswp/extract.h"
#include "src/exec/superblock.h"
#include "src/frontend/lower.h"
#include "src/ir/interp.h"
#include "src/obs/trace.h"
#include "src/rt/fabric.h"
#include "src/transforms/passes.h"

namespace twill {
namespace {

void BM_QueueHandshake(benchmark::State& state) {
  FabricConfig fc;
  fc.queueCapacity = 8;
  Fabric fabric(fc);
  fabric.addQueue(0, 32);
  ThreadPort producer(fabric, /*isHW=*/true);
  ThreadPort consumer(fabric, /*isHW=*/true);
  uint64_t now = 0;
  for (auto _ : state) {
    producer.now = now;
    consumer.now = now;
    benchmark::DoNotOptimize(producer.tryProduce(0, 42));
    uint32_t v;
    benchmark::DoNotOptimize(consumer.tryConsume(0, v));
    now += 4;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_QueueHandshake);

void BM_SemaphoreRaiseLower(benchmark::State& state) {
  FabricConfig fc;
  Fabric fabric(fc);
  fabric.addSemaphore(0, 0);
  ThreadPort port(fabric, /*isHW=*/true);
  uint64_t now = 0;
  for (auto _ : state) {
    port.now = now;
    benchmark::DoNotOptimize(port.trySemRaise(0, 1));
    benchmark::DoNotOptimize(port.trySemLower(0, 1));
    now += 3;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_SemaphoreRaiseLower);

// The tracing contract is "off by default, near-free when off": a disabled
// TraceSpan is one thread-local pointer load and a null check. Compare
// against BM_TraceHookEnabled (intern + two buffered events) to see what
// turning tracing on costs per span.
void BM_TraceHookDisabled(benchmark::State& state) {
  for (auto _ : state) {
    TraceSpan span("bench-pass");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceHookDisabled);

void BM_TraceHookEnabled(benchmark::State& state) {
  TraceRecorder rec;
  TraceScope scope(&rec);
  for (auto _ : state) {
    TraceSpan span("bench-pass");
    benchmark::DoNotOptimize(&span);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceHookEnabled);

void BM_BusArbitration(benchmark::State& state) {
  BusModel bus;
  uint64_t now = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bus.acquire(now));
    ++now;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BusArbitration);

// Execution-engine step throughput, three tiers: the superblock trace
// runner (the production fast path), per-inst ExecState::step() on the
// pre-decoded records (the interaction slow path), and the reference
// tree-walking interpreter (the legacy path). The items/s counter is
// retired instructions per second.
// Both production tiers share one decode across iterations (the sweep
// pattern: Layout::build is deterministic and idempotent, re-initializing
// each iteration's fresh memory) so the counter measures stepping, not
// decoding.
void BM_ExecStepSuperblock(benchmark::State& state) {
  const KernelInfo& k = chstoneKernels()[static_cast<size_t>(state.range(0))];
  state.SetLabel(k.name);
  Module m;
  DiagEngine diag;
  compileC(k.source, m, diag);
  runDefaultPipeline(m);
  Layout lay;
  {
    Memory scratch;
    lay.build(m, scratch);
  }
  DecodedProgram prog(m, lay);
  uint64_t retired = 0;
  for (auto _ : state) {
    Memory mem;
    lay.build(m, mem);
    FunctionalChannels chans;
    ExecState st(prog, mem, chans, m.findFunction("main"));
    FunctionalSuperModel model{UINT64_MAX};
    while (st.runSuper(model) == SuperRunStatus::kNeedStep) {
      if (st.step().status != StepStatus::Ran) break;
    }
    retired += st.retired();
    benchmark::DoNotOptimize(st.result());
  }
  state.SetItemsProcessed(static_cast<int64_t>(retired));
}
BENCHMARK(BM_ExecStepSuperblock)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

void BM_ExecStepDecoded(benchmark::State& state) {
  const KernelInfo& k = chstoneKernels()[static_cast<size_t>(state.range(0))];
  state.SetLabel(k.name);
  Module m;
  DiagEngine diag;
  compileC(k.source, m, diag);
  runDefaultPipeline(m);
  Layout lay;
  {
    Memory scratch;
    lay.build(m, scratch);
  }
  DecodedProgram prog(m, lay);
  uint64_t retired = 0;
  for (auto _ : state) {
    Memory mem;
    lay.build(m, mem);
    FunctionalChannels chans;
    ExecState st(prog, mem, chans, m.findFunction("main"));
    while (st.step().status == StepStatus::Ran) {
    }
    retired += st.retired();
    benchmark::DoNotOptimize(st.result());
  }
  state.SetItemsProcessed(static_cast<int64_t>(retired));
}
BENCHMARK(BM_ExecStepDecoded)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

void BM_ExecStepLegacy(benchmark::State& state) {
  const KernelInfo& k = chstoneKernels()[static_cast<size_t>(state.range(0))];
  state.SetLabel(k.name);
  Module m;
  DiagEngine diag;
  compileC(k.source, m, diag);
  runDefaultPipeline(m);
  uint64_t retired = 0;
  for (auto _ : state) {
    Memory mem;
    Layout lay;
    lay.build(m, mem);
    FunctionalChannels chans;
    RefExecState st(m, lay, mem, chans, m.findFunction("main"));
    while (st.step().status == StepStatus::Ran) {
    }
    retired += st.retired();
    benchmark::DoNotOptimize(st.result());
  }
  state.SetItemsProcessed(static_cast<int64_t>(retired));
}
BENCHMARK(BM_ExecStepLegacy)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

void BM_CompileKernel(benchmark::State& state) {
  const KernelInfo& k = chstoneKernels()[static_cast<size_t>(state.range(0))];
  state.SetLabel(k.name);
  for (auto _ : state) {
    Module m;
    DiagEngine diag;
    bool ok = compileC(k.source, m, diag);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_CompileKernel)->DenseRange(0, 7);

// Arena payoff #1: module teardown. Builds a fully optimized kernel module
// per iteration outside the timed region would be ideal, but benchmark has no
// per-iteration setup hook; instead time build+teardown and compare against
// BM_CompileKernel (build only) to read off the teardown share — it should be
// a destructor sweep plus a handful of slab frees, not a def-use graph walk.
void BM_ModuleTeardown(benchmark::State& state) {
  const KernelInfo& k = chstoneKernels()[static_cast<size_t>(state.range(0))];
  state.SetLabel(k.name);
  size_t bytes = 0;
  for (auto _ : state) {
    auto m = std::make_unique<Module>();
    DiagEngine diag;
    compileC(k.source, *m, diag);
    runDefaultPipeline(*m);
    bytes = m->arena().bytesAllocated();
    m.reset();  // the measured teardown
    benchmark::ClobberMemory();
  }
  state.counters["arena_bytes"] =
      benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kDefaults);
}
BENCHMARK(BM_ModuleTeardown)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

// Arena payoff #2: the full compile path the bench gate sums — parse, lower,
// optimize, extract, cleanup — end to end on one kernel per iteration.
void BM_DswpExtractCompile(benchmark::State& state) {
  const KernelInfo& k = chstoneKernels()[static_cast<size_t>(state.range(0))];
  state.SetLabel(k.name);
  for (auto _ : state) {
    Module m;
    DiagEngine diag;
    compileC(k.source, m, diag);
    runDefaultPipeline(m);
    DswpConfig cfg;
    DswpResult r = runDswp(m, cfg);
    benchmark::DoNotOptimize(r.totalQueues());
    benchmark::DoNotOptimize(m.instructionCount());
  }
}
BENCHMARK(BM_DswpExtractCompile)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

void BM_OptimizeAndExtract(benchmark::State& state) {
  const KernelInfo& k = chstoneKernels()[static_cast<size_t>(state.range(0))];
  state.SetLabel(k.name);
  for (auto _ : state) {
    Module m;
    DiagEngine diag;
    compileC(k.source, m, diag);
    runDefaultPipeline(m);
    DswpConfig cfg;
    DswpResult r = runDswp(m, cfg);
    benchmark::DoNotOptimize(r.totalQueues());
  }
}
BENCHMARK(BM_OptimizeAndExtract)->DenseRange(0, 7)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace twill

BENCHMARK_MAIN();
