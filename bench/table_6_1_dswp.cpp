// Table 6.1 — DSWP results: queues, semaphores and hardware threads created
// per benchmark, plus the resulting HW/SW workload split.
#include "bench/bench_common.h"

using namespace twill;
using namespace twill::bench;

int main() {
  header("Table 6.1: DSWP results (#queues / #semaphores / #HW threads)",
         "MIPS 12/0/1, ADPCM 328/0/5, AES 100/0/3, Blowfish 104/2/2, GSM 65/0/3, "
         "JPEG 576/3/6, MPEG-2 47/0/4, SHA 82/0/1; ~75%%-25%% HW/SW split");

  std::printf("%-10s %8s %12s %11s %11s %14s\n", "Benchmark", "#Queues", "#Semaphores",
              "#HWThreads", "#SWThreads", "HW-split(est)");
  double hwShareSum = 0;
  int count = 0;
  for (const auto& k : chstoneKernels()) {
    DriverOptions opts;
    opts.runPureSW = false;
    opts.runPureHW = false;
    BenchmarkReport r = runBenchmark(k.name, k.source, opts);
    if (!r.error.empty() && r.queues == 0) {
      std::printf("%-10s  FAILED: %s\n", k.name, r.error.c_str());
      continue;
    }
    // Estimated workload split, approximated via thread domains: HW thread
    // count over total threads (both already on the report).
    unsigned total = r.hwThreads + r.swThreads;
    double hwShare = total ? 100.0 * r.hwThreads / total : 0;
    hwShareSum += hwShare;
    ++count;
    std::printf("%-10s %8u %12u %11u %11u %13.0f%%\n", k.name, r.queues, r.semaphores,
                r.hwThreads, r.swThreads, hwShare);
  }
  if (count)
    std::printf("\nAverage HW thread share: %.0f%% (thesis reports a ~75%%/25%% split)\n",
                hwShareSum / count);
  return 0;
}
