// Fig. 6.1 — power consumption normalized to the pure-Microblaze SW
// implementation.
#include "bench/bench_common.h"

using namespace twill;
using namespace twill::bench;

int main() {
  header("Fig 6.1: normalized power (pure SW = 1.00)",
         "shape: pure HW lowest, Twill between HW and SW (Microblaze PLLs dominate)");

  std::printf("%-10s %9s %9s %9s\n", "Benchmark", "SW", "HW", "Twill");
  double hwSum = 0, twillSum = 0;
  int count = 0;
  for (const auto& k : chstoneKernels()) {
    BenchmarkReport r = runBenchmark(k.name, k.source);
    if (!r.ok) {
      std::printf("%-10s  FAILED: %s\n", k.name, r.error.c_str());
      continue;
    }
    std::printf("%-10s %9.2f %9.2f %9.2f%s\n", k.name, r.powerSW, r.powerHW, r.powerTwill,
                (r.powerHW < r.powerTwill && r.powerTwill < r.powerSW) ? "" : "   (!)");
    hwSum += r.powerHW;
    twillSum += r.powerTwill;
    ++count;
  }
  if (count)
    std::printf("\nAverages: HW %.2f, Twill %.2f (both must sit below SW=1.00; "
                "ordering HW < Twill < SW matches Fig 6.1)\n",
                hwSum / count, twillSum / count);
  return 0;
}
