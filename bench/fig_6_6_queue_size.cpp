// Fig. 6.6 — Twill performance across queue sizes, normalized to length-8
// queues.
#include "bench/bench_common.h"

using namespace twill;
using namespace twill::bench;

int main() {
  header("Fig 6.6: speedup vs queue size (normalized to length-8 queues)",
         "thesis: ~9.7%% slowdown shrinking queues from 32 to 8; resilient overall");

  const std::vector<unsigned>& sizes = kQueueCapacitySweep;
  std::printf("%-10s", "Benchmark");
  for (unsigned s : sizes) std::printf(" %7s%-3u", "len=", s);
  std::printf("\n");

  double s32Sum = 0;
  int count = 0;
  for (const auto& k : chstoneKernels()) {
    PreparedKernel pk = prepareKernel(k, {}, 100, /*withBaseline=*/false);
    if (!pk.ok) continue;
    uint64_t baseCycles = 0;
    std::vector<double> norms;
    // First pass: measure len=8 (the normalization base).
    {
      SimConfig sc;
      sc.queueCapacity = 8;
      baseCycles = runTwillCycles(pk, sc);
    }
    std::printf("%-10s", k.name);
    double n32 = 1.0;
    for (unsigned s : sizes) {
      SimConfig sc;
      sc.queueCapacity = s;
      uint64_t cycles = runTwillCycles(pk, sc);
      double norm = (cycles && baseCycles) ? static_cast<double>(baseCycles) / cycles : 0;
      if (s == 32) n32 = norm;
      std::printf(" %9.3f", norm);
    }
    std::printf("\n");
    s32Sum += (n32 - 1.0) * 100.0;
    ++count;
  }
  if (count)
    std::printf("\nAverage speedup from len-8 to len-32 queues: %.1f%% "
                "(thesis: ~9.7%% the other way, i.e. 32->8 costs ~9.7%%)\n",
                s32Sum / count);
  return 0;
}
