// Fig. 6.4 — Blowfish performance across targeted partition split points,
// plus the §6.4 "modified heuristic" row (the thesis hand-tuned the
// heuristic for Blowfish and got 1.89x over pure HW with queues 92 -> 34).
#include "bench/bench_common.h"

using namespace twill;
using namespace twill::bench;

int main() {
  header("Fig 6.4: Blowfish performance vs targeted SW split point",
         "default heuristic only matches pure HW on Blowfish (§6.4); a modified split "
         "reduces queue count and improves performance");

  const KernelInfo* k = findKernel("blowfish");
  PreparedKernel ref = prepareKernel(*k);
  SimOutcome hw = simulatePureHW(*ref.base, ref.baseSchedules);

  std::printf("%-12s %12s %10s %12s\n", "SW split", "Twill cycles", "#queues", "vs pure HW");
  for (double split : {0.05, 0.10, 0.25, 0.40, 0.50, 0.65, 0.80, 0.95}) {
    DswpConfig cfg;
    cfg.swFraction = split;
    PreparedKernel pk = prepareKernel(*k, cfg);
    if (!pk.ok) continue;
    SimConfig sc;
    uint64_t cycles = runTwillCycles(pk, sc);
    double vsHW = cycles ? static_cast<double>(hw.cycles) / cycles : 0;
    std::printf("%11.0f%% %12llu %10u %11.2fx\n", split * 100,
                static_cast<unsigned long long>(cycles), pk.dswp.totalQueues(), vsHW);
  }

  // "Modified heuristic" row: fewer, larger partitions to cut the
  // master-control ping-pong the thesis diagnosed (§6.4).
  {
    DswpConfig cfg;
    cfg.swFraction = 0.05;
    cfg.numPartitions = 2;
    PreparedKernel pk = prepareKernel(*k, cfg);
    SimConfig sc;
    uint64_t cycles = runTwillCycles(pk, sc);
    double vsHW = cycles ? static_cast<double>(hw.cycles) / cycles : 0;
    std::printf("%-12s %12llu %10u %11.2fx\n", "tuned(K=2)",
                static_cast<unsigned long long>(cycles), pk.dswp.totalQueues(), vsHW);
  }
  std::printf("\n(Thesis: tuning the heuristic for Blowfish gave 1.89x over pure HW and\n"
              " reduced the queue count from 92 to 34.)\n");
  return 0;
}
