// Shared helpers for the per-table/per-figure bench binaries.
//
// Every binary regenerates one table or figure from Ch. 6 of the thesis and
// prints it in the same rows/series layout. Absolute numbers differ from
// the thesis (see EXPERIMENTS.md) but each bench also prints the thesis's
// headline quantity next to ours for easy comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/chstone/kernels.h"
#include "src/driver/driver.h"
#include "src/frontend/lower.h"
#include "src/ir/interp.h"
#include "src/ir/verifier.h"

namespace twill {
namespace bench {

/// Canonical sweep points for Fig. 6.5 (queue latency) and Fig. 6.6 (queue
/// capacity); bench_main records the same points in BENCH_dswp.json so the
/// artifact stays comparable with the figure binaries.
inline const std::vector<unsigned> kQueueLatencySweep = {2, 8, 32, 128};
inline const std::vector<unsigned> kQueueCapacitySweep = {2, 4, 8, 16, 32};

/// Shared command line for the bench binaries:
///   --quick        trimmed run (kernel subset, no parameter sweeps)
///   --out FILE     write the machine-readable JSON artifact to FILE
///   --kernel NAME  restrict to one kernel (repeatable)
///   --repeat N     run each stage N times, report the median wall time
///   --jobs N       evaluate kernels on N worker threads (bench_main; the
///                  artifact is byte-identical to the serial run modulo
///                  machine-dependent *_wall_ms values)
struct BenchCli {
  bool quick = false;
  std::string out;
  std::vector<std::string> kernels;
  unsigned repeat = 1;
  unsigned jobs = 1;
};

inline BenchCli parseBenchCli(int argc, char** argv, const char* defaultOut = "") {
  BenchCli cli;
  cli.out = defaultOut;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto needValue = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a value\n", argv[0], flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--quick") {
      cli.quick = true;
    } else if (arg == "--out") {
      cli.out = needValue("--out");
    } else if (arg == "--kernel") {
      cli.kernels.push_back(needValue("--kernel"));
    } else if (arg == "--repeat") {
      int n = std::atoi(needValue("--repeat"));
      if (n < 1) {
        std::fprintf(stderr, "%s: --repeat wants a positive count\n", argv[0]);
        std::exit(2);
      }
      cli.repeat = static_cast<unsigned>(n);
    } else if (arg == "--jobs") {
      int n = std::atoi(needValue("--jobs"));
      if (n < 1) {
        std::fprintf(stderr, "%s: --jobs wants a positive count\n", argv[0]);
        std::exit(2);
      }
      cli.jobs = static_cast<unsigned>(n);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: %s [--quick] [--out FILE] [--kernel NAME ...] [--repeat N] [--jobs N]\n",
                  argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown option '%s' (try --help)\n", argv[0], arg.c_str());
      std::exit(2);
    }
  }
  return cli;
}

/// Kernels selected by the CLI: the explicit `--kernel` list, or the first
/// `quickCount` kernels under `--quick`, or all eight.
inline std::vector<KernelInfo> selectKernels(const BenchCli& cli, size_t quickCount = 3) {
  std::vector<KernelInfo> out;
  if (!cli.kernels.empty()) {
    for (const auto& name : cli.kernels) {
      const KernelInfo* k = findKernel(name);
      if (!k) {
        std::fprintf(stderr, "unknown kernel '%s'\n", name.c_str());
        std::exit(2);
      }
      out.push_back(*k);
    }
    return out;
  }
  const auto& all = chstoneKernels();
  size_t n = cli.quick ? (quickCount < all.size() ? quickCount : all.size()) : all.size();
  out.assign(all.begin(), all.begin() + static_cast<long>(n));
  return out;
}

/// Pre-compiled benchmark: the optimized baseline module plus the extracted
/// Twill module, so parameter sweeps can re-simulate without re-compiling.
struct PreparedKernel {
  std::string name;
  std::unique_ptr<Module> base;     // for pure SW / pure HW
  std::unique_ptr<Module> twillMod; // extracted
  DswpResult dswp;
  ScheduleMap baseSchedules;
  ScheduleMap twillSchedules;
  uint32_t expected = 0;
  bool ok = false;
};

/// `withBaseline = false` skips compiling/scheduling the pure-SW/HW module
/// (the checksum is taken from the optimized module before extraction);
/// Twill-only parameter sweeps don't pay for a baseline they never simulate.
inline PreparedKernel prepareKernel(const KernelInfo& k, const DswpConfig& dswpCfg = {},
                                    unsigned inlineThreshold = 100, bool withBaseline = true) {
  PreparedKernel out;
  out.name = k.name;
  auto compile = [&](std::unique_ptr<Module>& m) {
    m = std::make_unique<Module>();
    DiagEngine diag;
    if (!compileC(k.source, *m, diag)) {
      std::fprintf(stderr, "%s: compile failed:\n%s\n", k.name, diag.str().c_str());
      return false;
    }
    runDefaultPipeline(*m, inlineThreshold);
    return true;
  };
  if (withBaseline && !compile(out.base)) return out;
  if (!compile(out.twillMod)) return out;
  {
    Interp in(withBaseline ? *out.base : *out.twillMod);
    out.expected = in.run("main");
  }
  out.dswp = runDswp(*out.twillMod, dswpCfg);
  if (withBaseline) out.baseSchedules = scheduleModule(*out.base);
  out.twillSchedules = scheduleModule(*out.twillMod);
  out.ok = true;
  return out;
}

/// Runs the Twill simulation for a prepared kernel under `cfg`, verifying
/// the checksum. Returns 0 cycles on failure (and prints why). Pass a
/// SimProgram to share one decode across a parameter sweep.
inline uint64_t runTwillCycles(PreparedKernel& pk, const SimConfig& cfg,
                               SimProgram* shared = nullptr) {
  SimOutcome o = simulateTwill(*pk.twillMod, pk.dswp, cfg, pk.twillSchedules, shared);
  if (!o.ok || o.result != pk.expected) {
    std::fprintf(stderr, "%s: twill sim failed: %s\n", pk.name.c_str(), o.message.c_str());
    return 0;
  }
  return o.cycles;
}

inline void header(const char* title, const char* paperNote) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paperNote);
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace twill
