// Shared helpers for the per-table/per-figure bench binaries.
//
// Every binary regenerates one table or figure from Ch. 6 of the thesis and
// prints it in the same rows/series layout. Absolute numbers differ from
// the thesis (see EXPERIMENTS.md) but each bench also prints the thesis's
// headline quantity next to ours for easy comparison.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/chstone/kernels.h"
#include "src/driver/driver.h"
#include "src/frontend/lower.h"
#include "src/ir/interp.h"
#include "src/ir/verifier.h"

namespace twill {
namespace bench {

/// Pre-compiled benchmark: the optimized baseline module plus the extracted
/// Twill module, so parameter sweeps can re-simulate without re-compiling.
struct PreparedKernel {
  std::string name;
  std::unique_ptr<Module> base;     // for pure SW / pure HW
  std::unique_ptr<Module> twillMod; // extracted
  DswpResult dswp;
  ScheduleMap baseSchedules;
  ScheduleMap twillSchedules;
  uint32_t expected = 0;
  bool ok = false;
};

inline PreparedKernel prepareKernel(const KernelInfo& k, const DswpConfig& dswpCfg = {},
                                    unsigned inlineThreshold = 100) {
  PreparedKernel out;
  out.name = k.name;
  auto compile = [&](std::unique_ptr<Module>& m) {
    m = std::make_unique<Module>();
    DiagEngine diag;
    if (!compileC(k.source, *m, diag)) {
      std::fprintf(stderr, "%s: compile failed:\n%s\n", k.name, diag.str().c_str());
      return false;
    }
    runDefaultPipeline(*m, inlineThreshold);
    return true;
  };
  if (!compile(out.base) || !compile(out.twillMod)) return out;
  {
    Interp in(*out.base);
    out.expected = in.run("main");
  }
  out.dswp = runDswp(*out.twillMod, dswpCfg);
  out.baseSchedules = scheduleModule(*out.base);
  out.twillSchedules = scheduleModule(*out.twillMod);
  out.ok = true;
  return out;
}

/// Runs the Twill simulation for a prepared kernel under `cfg`, verifying
/// the checksum. Returns 0 cycles on failure (and prints why).
inline uint64_t runTwillCycles(PreparedKernel& pk, const SimConfig& cfg) {
  SimOutcome o = simulateTwill(*pk.twillMod, pk.dswp, cfg, pk.twillSchedules);
  if (!o.ok || o.result != pk.expected) {
    std::fprintf(stderr, "%s: twill sim failed: %s\n", pk.name.c_str(), o.message.c_str());
    return 0;
  }
  return o.cycles;
}

inline void header(const char* title, const char* paperNote) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("Paper reference: %s\n", paperNote);
  std::printf("================================================================\n");
}

}  // namespace bench
}  // namespace twill
