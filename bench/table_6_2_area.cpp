// Table 6.2 — FPGA LUTs: pure-LegUp translation vs Twill's HW threads vs the
// full Twill runtime vs Twill + Microblaze.
#include "bench/bench_common.h"

using namespace twill;
using namespace twill::bench;

int main() {
  header("Table 6.2: LUTs (LegUp | Twill HWThreads | Twill | Twill+Microblaze)",
         "e.g. MIPS 2101|1830|2318|3752 ... JPEG 31084|18443|56101|57535; "
         "HW-thread area ~1.73x smaller than LegUp, total ~1.35x larger");

  std::printf("%-10s %10s %16s %10s %18s\n", "Benchmark", "LegUp", "Twill HWThreads", "Twill",
              "Twill+Microblaze");
  double ratioHwSum = 0, ratioTotalSum = 0;
  int count = 0;
  for (const auto& k : chstoneKernels()) {
    DriverOptions opts;
    opts.runPureSW = false;  // areas need only the HLS results
    opts.runPureHW = true;
    opts.runTwill = true;
    BenchmarkReport r = runBenchmark(k.name, k.source, opts);
    if (!r.ok) {
      std::printf("%-10s  FAILED: %s\n", k.name, r.error.c_str());
      continue;
    }
    std::printf("%-10s %10u %16u %10u %18u\n", k.name, r.areas.legup.luts,
                r.areas.twillHwThreads.luts, r.areas.twillTotal.luts,
                r.areas.twillPlusMicroblaze.luts);
    if (r.areas.twillHwThreads.luts)
      ratioHwSum += static_cast<double>(r.areas.legup.luts) / r.areas.twillHwThreads.luts;
    if (r.areas.legup.luts)
      ratioTotalSum += static_cast<double>(r.areas.twillTotal.luts) / r.areas.legup.luts;
    ++count;
  }
  if (count) {
    std::printf("\nHW-thread area reduction vs LegUp:  %.2fx (thesis: 1.73x)\n",
                ratioHwSum / count);
    std::printf("Twill total area vs LegUp:          %.2fx (thesis: 1.35x)\n",
                ratioTotalSum / count);
  }
  std::printf("\nBRAM blocks: Microblaze uses %u; LegUp instantiates per-array memories;\n"
              "Twill keeps HW-thread data in processor memory (see EXPERIMENTS.md).\n",
              PrimitiveAreas::kMicroblazeBrams);
  return 0;
}
