// bench_main — the repo's perf-trajectory harness.
//
// Runs the measurements behind the fig/table benches (full three-flow
// reports per CHStone kernel, plus the Fig. 6.5/6.6 queue latency/capacity
// sweeps) under one CLI and writes a machine-readable artifact so future
// changes can be compared against a baseline:
//
//   $ bench_main --quick --out BENCH_dswp.json
//   $ bench_main --out BENCH_dswp.json            # full run, all 8 kernels
//   $ bench_main --repeat 5 --out BENCH_dswp.json # median-of-5 wall times
//
// The JSON records, per kernel, the driver report (cycles, areas, power,
// speedups) and the wall-clock cost of each pipeline stage — the former
// tracks fidelity to the thesis, the latter tracks the toolchain's own
// speed. `--repeat N` reruns each stage N times and reports the median
// wall time, so perf deltas across PRs are measurable above noise; the
// top-level `engine` field attributes them to the simulator generation.
#include <algorithm>
#include <chrono>

#include "bench/bench_common.h"
#include "src/support/json.h"

using namespace twill;
using namespace twill::bench;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One sweep over `values`: simulates each point, optionally emitting the
/// per-point JSON (null writer = pure timing pass; the `--repeat` reruns
/// must measure exactly the workload the emitted sweep measured).
void runSweep(PreparedKernel& pk, SimProgram& prog, const std::vector<unsigned>& values,
              bool isLatency, JsonWriter* w) {
  for (unsigned v : values) {
    SimConfig sc;
    if (isLatency)
      sc.queueLatency = v;
    else
      sc.queueCapacity = v;
    uint64_t cycles = runTwillCycles(pk, sc, &prog);
    if (w != nullptr) {
      w->beginObject();
      w->field(isLatency ? "latency" : "capacity", v);
      w->field("cycles", cycles);
      w->endObject();
    }
  }
}

void emitSweep(JsonWriter& w, PreparedKernel& pk, SimProgram& prog, const char* key,
               const std::vector<unsigned>& values, bool isLatency) {
  w.key(key);
  w.beginArray();
  runSweep(pk, prog, values, isLatency, &w);
  w.endArray();
}

/// Re-runs both sweeps without emitting JSON (`--repeat` timing passes).
void rerunSweeps(PreparedKernel& pk, SimProgram& prog) {
  runSweep(pk, prog, kQueueLatencySweep, /*isLatency=*/true, nullptr);
  runSweep(pk, prog, kQueueCapacitySweep, /*isLatency=*/false, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  BenchCli cli = parseBenchCli(argc, argv, "BENCH_dswp.json");
  std::vector<KernelInfo> kernels = selectKernels(cli);

  const auto runStart = Clock::now();
  JsonWriter w;
  w.beginObject();
  w.field("bench", "dswp");
  // Which simulator generation produced the wall times (perf attribution
  // across PRs): the superblock trace runner on the pre-decoded records,
  // under the event-driven scheduler.
  w.field("engine", "superblock-event");
  w.field("quick", cli.quick);
  w.field("repeat", cli.repeat);
  w.key("kernels");
  w.beginArray();

  unsigned okCount = 0;
  double speedupTwillSum = 0, powerTwillSum = 0;
  for (const auto& k : kernels) {
    std::fprintf(stderr, "[bench_main] %s...\n", k.name);
    BenchmarkReport r;
    std::vector<double> reportTimes;
    for (unsigned rep = 0; rep < cli.repeat; ++rep) {
      auto tr = Clock::now();
      DriverOptions dopts;
      dopts.keepTwillArtifacts = !cli.quick;  // sweeps reuse the extracted module
      BenchmarkReport ri = runBenchmark(k.name, k.source, dopts);
      reportTimes.push_back(msSince(tr));
      if (rep == 0) r = std::move(ri);
    }
    double reportMs = median(reportTimes);
    auto t0 = Clock::now();

    w.beginObject();
    w.key("report");
    emitReport(w, r);
    w.field("report_wall_ms", reportMs);
    if (r.ok) {
      ++okCount;
      speedupTwillSum += r.speedupTwillvsSW();
      powerTwillSum += r.powerTwill;
    }

    if (!cli.quick && r.ok && r.twillArtifacts) {
      // Fig. 6.5 / 6.6: re-simulate across queue latencies and capacities,
      // reusing the module runBenchmark already extracted and scheduled.
      PreparedKernel pk;
      pk.name = k.name;
      pk.expected = r.expected;
      pk.twillMod = std::move(r.twillArtifacts->module);
      pk.dswp = std::move(r.twillArtifacts->dswp);
      pk.twillSchedules = std::move(r.twillArtifacts->schedules);
      pk.ok = true;
      std::vector<double> sweepTimes;
      SimProgram prog(*pk.twillMod, pk.twillSchedules);  // one decode, all runs
      t0 = Clock::now();
      emitSweep(w, pk, prog, "queue_latency_sweep", kQueueLatencySweep, /*isLatency=*/true);
      emitSweep(w, pk, prog, "queue_capacity_sweep", kQueueCapacitySweep, /*isLatency=*/false);
      const double emittingPassMs = msSince(t0);
      if (cli.repeat == 1) {
        sweepTimes.push_back(emittingPassMs);
      } else {
        // Median over N uniform samples: the JSON-emitting pass above
        // measures a different workload, so it is excluded from the timing.
        for (unsigned rep = 0; rep < cli.repeat; ++rep) {
          t0 = Clock::now();
          rerunSweeps(pk, prog);
          sweepTimes.push_back(msSince(t0));
        }
      }
      w.field("sweep_wall_ms", median(sweepTimes));
    }
    w.endObject();
  }
  w.endArray();

  w.key("summary");
  w.beginObject();
  w.field("kernels_run", static_cast<uint64_t>(kernels.size()));
  w.field("kernels_ok", okCount);
  w.field("avg_speedup_twill_vs_sw", okCount ? speedupTwillSum / okCount : 0.0);
  w.field("avg_power_twill", okCount ? powerTwillSum / okCount : 0.0);
  w.field("total_wall_ms", msSince(runStart));
  w.endObject();
  w.endObject();

  if (cli.out.empty() || cli.out == "-") {
    std::printf("%s\n", w.str().c_str());
  } else {
    std::FILE* f = std::fopen(cli.out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_main: cannot write '%s'\n", cli.out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
    std::fprintf(stderr, "[bench_main] wrote %s (%u/%zu kernels ok)\n", cli.out.c_str(),
                 okCount, kernels.size());
  }
  return okCount == kernels.size() ? 0 : 1;
}
