// bench_main — the repo's perf-trajectory harness.
//
// Runs the measurements behind the fig/table benches (full three-flow
// reports per CHStone kernel, plus the Fig. 6.5/6.6 queue latency/capacity
// sweeps) under one CLI and writes a machine-readable artifact so future
// changes can be compared against a baseline:
//
//   $ bench_main --quick --out BENCH_dswp.json
//   $ bench_main --out BENCH_dswp.json            # full run, all 8 kernels
//   $ bench_main --repeat 5 --out BENCH_dswp.json # median-of-5 wall times
//   $ bench_main --jobs 4 --out BENCH_dswp.json   # kernels on 4 workers
//
// The JSON records, per kernel, the driver report (cycles, areas, power,
// speedups, per-stage compile cost) and the wall-clock cost of each
// pipeline stage — the former tracks fidelity to the thesis, the latter
// tracks the toolchain's own speed. `--repeat N` reruns each stage N times
// and reports the median wall time, so perf deltas across PRs are
// measurable above noise; the top-level `engine` field attributes them to
// the simulator generation.
//
// Kernels are computed first (serially by default; on a worker pool under
// --jobs N) and emitted afterwards in kernel order from the stored results,
// so the artifact is byte-identical for every job count modulo the
// machine-dependent *_wall_ms values the bench gate already ignores.
#include <algorithm>

#include "bench/bench_common.h"
#include "src/explore/pool.h"
#include "src/support/json.h"
#include "src/support/stopwatch.h"

using namespace twill;
using namespace twill::bench;

namespace {

using Clock = StopwatchClock;

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// One sweep over `values`: simulates each point, collecting cycles when
/// `out` is given (null = pure timing pass; the `--repeat` reruns must
/// measure exactly the workload the recorded sweep measured).
void runSweep(PreparedKernel& pk, SimProgram& prog, const std::vector<unsigned>& values,
              bool isLatency, std::vector<uint64_t>* out) {
  for (unsigned v : values) {
    SimConfig sc;
    if (isLatency)
      sc.queueLatency = v;
    else
      sc.queueCapacity = v;
    uint64_t cycles = runTwillCycles(pk, sc, &prog);
    if (out != nullptr) out->push_back(cycles);
  }
}

/// Everything one kernel contributes to the artifact, computed up front so
/// emission is a pure serialization pass over stored results.
struct KernelRun {
  BenchmarkReport report;
  double reportMs = 0;
  bool hasSweeps = false;
  std::vector<uint64_t> latencyCycles;   // per kQueueLatencySweep point
  std::vector<uint64_t> capacityCycles;  // per kQueueCapacitySweep point
  double sweepMs = 0;
};

KernelRun computeKernel(const KernelInfo& k, const BenchCli& cli) {
  KernelRun kr;
  std::vector<double> reportTimes;
  for (unsigned rep = 0; rep < cli.repeat; ++rep) {
    auto tr = Clock::now();
    DriverOptions dopts;
    dopts.keepTwillArtifacts = !cli.quick;  // sweeps reuse the extracted module
    BenchmarkReport ri = runBenchmark(k.name, k.source, dopts);
    reportTimes.push_back(msSince(tr));
    if (rep == 0) kr.report = std::move(ri);
  }
  kr.reportMs = median(reportTimes);

  if (!cli.quick && kr.report.ok && kr.report.twillArtifacts) {
    // Fig. 6.5 / 6.6: re-simulate across queue latencies and capacities,
    // reusing the module runBenchmark already extracted and scheduled.
    PreparedKernel pk;
    pk.name = k.name;
    pk.expected = kr.report.expected;
    pk.twillMod = std::move(kr.report.twillArtifacts->module);
    pk.dswp = std::move(kr.report.twillArtifacts->dswp);
    pk.twillSchedules = std::move(kr.report.twillArtifacts->schedules);
    pk.ok = true;
    kr.hasSweeps = true;
    std::vector<double> sweepTimes;
    SimProgram prog(*pk.twillMod, pk.twillSchedules);  // one decode, all runs
    auto t0 = Clock::now();
    runSweep(pk, prog, kQueueLatencySweep, /*isLatency=*/true, &kr.latencyCycles);
    runSweep(pk, prog, kQueueCapacitySweep, /*isLatency=*/false, &kr.capacityCycles);
    const double recordingPassMs = msSince(t0);
    if (cli.repeat == 1) {
      sweepTimes.push_back(recordingPassMs);
    } else {
      // Median over N uniform samples: the recording pass above fills the
      // result vectors (a different workload), so it is excluded.
      for (unsigned rep = 0; rep < cli.repeat; ++rep) {
        t0 = Clock::now();
        runSweep(pk, prog, kQueueLatencySweep, /*isLatency=*/true, nullptr);
        runSweep(pk, prog, kQueueCapacitySweep, /*isLatency=*/false, nullptr);
        sweepTimes.push_back(msSince(t0));
      }
    }
    kr.sweepMs = median(sweepTimes);
  }
  kr.report.twillArtifacts.reset();
  return kr;
}

void emitSweep(JsonWriter& w, const char* key, const std::vector<unsigned>& values,
               bool isLatency, const std::vector<uint64_t>& cycles) {
  w.key(key);
  w.beginArray();
  for (size_t i = 0; i < values.size(); ++i) {
    w.beginObject();
    w.field(isLatency ? "latency" : "capacity", values[i]);
    w.field("cycles", cycles[i]);
    w.endObject();
  }
  w.endArray();
}

}  // namespace

int main(int argc, char** argv) {
  BenchCli cli = parseBenchCli(argc, argv, "BENCH_dswp.json");
  std::vector<KernelInfo> kernels = selectKernels(cli);

  const auto runStart = Clock::now();

  // Compute every kernel's results. The pool claims kernels from a shared
  // counter; each task writes only its own slot, so any job count produces
  // the same stored results (the ROADMAP's kernel fan-out item).
  std::vector<KernelRun> runs(kernels.size());
  runIndexedTasks(cli.jobs, kernels.size(), [&](size_t i) {
    std::fprintf(stderr, "[bench_main] %s...\n", kernels[i].name);
    runs[i] = computeKernel(kernels[i], cli);
  });

  JsonWriter w;
  w.beginObject();
  w.field("bench", "dswp");
  // Which simulator generation produced the wall times (perf attribution
  // across PRs): the superblock trace runner on the pre-decoded records,
  // under the event-driven scheduler.
  w.field("engine", "superblock-event");
  w.field("quick", cli.quick);
  w.field("repeat", cli.repeat);
  w.key("kernels");
  w.beginArray();

  unsigned okCount = 0;
  double speedupTwillSum = 0, powerTwillSum = 0;
  for (const KernelRun& kr : runs) {
    w.beginObject();
    w.key("report");
    emitReport(w, kr.report);
    w.field("report_wall_ms", kr.reportMs);
    if (kr.report.ok) {
      ++okCount;
      speedupTwillSum += kr.report.speedupTwillvsSW();
      powerTwillSum += kr.report.powerTwill;
    }
    if (kr.hasSweeps) {
      emitSweep(w, "queue_latency_sweep", kQueueLatencySweep, /*isLatency=*/true,
                kr.latencyCycles);
      emitSweep(w, "queue_capacity_sweep", kQueueCapacitySweep, /*isLatency=*/false,
                kr.capacityCycles);
      w.field("sweep_wall_ms", kr.sweepMs);
    }
    w.endObject();
  }
  w.endArray();

  w.key("summary");
  w.beginObject();
  w.field("kernels_run", static_cast<uint64_t>(kernels.size()));
  w.field("kernels_ok", okCount);
  w.field("avg_speedup_twill_vs_sw", okCount ? speedupTwillSum / okCount : 0.0);
  w.field("avg_power_twill", okCount ? powerTwillSum / okCount : 0.0);
  w.field("total_wall_ms", msSince(runStart));
  w.endObject();
  w.endObject();

  if (cli.out.empty() || cli.out == "-") {
    std::printf("%s\n", w.str().c_str());
  } else {
    std::FILE* f = std::fopen(cli.out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_main: cannot write '%s'\n", cli.out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
    std::fprintf(stderr, "[bench_main] wrote %s (%u/%zu kernels ok)\n", cli.out.c_str(),
                 okCount, kernels.size());
  }
  return okCount == kernels.size() ? 0 : 1;
}
