// bench_main — the repo's perf-trajectory harness.
//
// Runs the measurements behind the fig/table benches (full three-flow
// reports per CHStone kernel, plus the Fig. 6.5/6.6 queue latency/capacity
// sweeps) under one CLI and writes a machine-readable artifact so future
// changes can be compared against a baseline:
//
//   $ bench_main --quick --out BENCH_dswp.json
//   $ bench_main --out BENCH_dswp.json            # full run, all 8 kernels
//
// The JSON records, per kernel, the driver report (cycles, areas, power,
// speedups) and the wall-clock cost of each pipeline stage — the former
// tracks fidelity to the thesis, the latter tracks the toolchain's own
// speed.
#include <chrono>

#include "bench/bench_common.h"
#include "src/support/json.h"

using namespace twill;
using namespace twill::bench;

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

void emitSweep(JsonWriter& w, PreparedKernel& pk, const char* key,
               const std::vector<unsigned>& values, bool isLatency) {
  w.key(key);
  w.beginArray();
  for (unsigned v : values) {
    SimConfig sc;
    if (isLatency)
      sc.queueLatency = v;
    else
      sc.queueCapacity = v;
    w.beginObject();
    w.field(isLatency ? "latency" : "capacity", v);
    w.field("cycles", runTwillCycles(pk, sc));
    w.endObject();
  }
  w.endArray();
}

}  // namespace

int main(int argc, char** argv) {
  BenchCli cli = parseBenchCli(argc, argv, "BENCH_dswp.json");
  std::vector<KernelInfo> kernels = selectKernels(cli);

  const auto runStart = Clock::now();
  JsonWriter w;
  w.beginObject();
  w.field("bench", "dswp");
  w.field("quick", cli.quick);
  w.key("kernels");
  w.beginArray();

  unsigned okCount = 0;
  double speedupTwillSum = 0, powerTwillSum = 0;
  for (const auto& k : kernels) {
    std::fprintf(stderr, "[bench_main] %s...\n", k.name);
    auto t0 = Clock::now();
    DriverOptions dopts;
    dopts.keepTwillArtifacts = !cli.quick;  // sweeps reuse the extracted module
    BenchmarkReport r = runBenchmark(k.name, k.source, dopts);
    double reportMs = msSince(t0);

    w.beginObject();
    w.key("report");
    emitReport(w, r);
    w.field("report_wall_ms", reportMs);
    if (r.ok) {
      ++okCount;
      speedupTwillSum += r.speedupTwillvsSW();
      powerTwillSum += r.powerTwill;
    }

    if (!cli.quick && r.ok && r.twillArtifacts) {
      // Fig. 6.5 / 6.6: re-simulate across queue latencies and capacities,
      // reusing the module runBenchmark already extracted and scheduled.
      PreparedKernel pk;
      pk.name = k.name;
      pk.expected = r.expected;
      pk.twillMod = std::move(r.twillArtifacts->module);
      pk.dswp = std::move(r.twillArtifacts->dswp);
      pk.twillSchedules = std::move(r.twillArtifacts->schedules);
      pk.ok = true;
      t0 = Clock::now();
      emitSweep(w, pk, "queue_latency_sweep", kQueueLatencySweep, /*isLatency=*/true);
      emitSweep(w, pk, "queue_capacity_sweep", kQueueCapacitySweep, /*isLatency=*/false);
      w.field("sweep_wall_ms", msSince(t0));
    }
    w.endObject();
  }
  w.endArray();

  w.key("summary");
  w.beginObject();
  w.field("kernels_run", static_cast<uint64_t>(kernels.size()));
  w.field("kernels_ok", okCount);
  w.field("avg_speedup_twill_vs_sw", okCount ? speedupTwillSum / okCount : 0.0);
  w.field("avg_power_twill", okCount ? powerTwillSum / okCount : 0.0);
  w.field("total_wall_ms", msSince(runStart));
  w.endObject();
  w.endObject();

  if (cli.out.empty() || cli.out == "-") {
    std::printf("%s\n", w.str().c_str());
  } else {
    std::FILE* f = std::fopen(cli.out.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_main: cannot write '%s'\n", cli.out.c_str());
      return 1;
    }
    std::fprintf(f, "%s\n", w.str().c_str());
    std::fclose(f);
    std::fprintf(stderr, "[bench_main] wrote %s (%u/%zu kernels ok)\n", cli.out.c_str(),
                 okCount, kernels.size());
  }
  return okCount == kernels.size() ? 0 : 1;
}
