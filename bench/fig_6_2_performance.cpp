// Fig. 6.2 — performance speedups normalized to the pure-SW implementation.
#include "bench/bench_common.h"

using namespace twill;
using namespace twill::bench;

int main() {
  header("Fig 6.2: speedup over pure SW (higher is better)",
         "thesis averages: pure HW ~13.6x, Twill ~22.2x over SW; Twill ~1.63x over HW; "
         "Twill only *matches* pure HW on Blowfish (§6.4)");

  std::printf("%-10s %12s %12s %12s %14s\n", "Benchmark", "SW cycles", "HW speedup",
              "Twill speedup", "Twill vs HW");
  double hwSum = 0, twSum = 0, twHwSum = 0;
  int count = 0;
  for (const auto& k : chstoneKernels()) {
    BenchmarkReport r = runBenchmark(k.name, k.source);
    if (!r.ok) {
      std::printf("%-10s  FAILED: %s\n", k.name, r.error.c_str());
      continue;
    }
    std::printf("%-10s %12llu %11.2fx %12.2fx %13.2fx\n", k.name,
                static_cast<unsigned long long>(r.sw.cycles), r.speedupHWvsSW(),
                r.speedupTwillvsSW(), r.speedupTwillvsHW());
    hwSum += r.speedupHWvsSW();
    twSum += r.speedupTwillvsSW();
    twHwSum += r.speedupTwillvsHW();
    ++count;
  }
  if (count) {
    std::printf("\nAverages: HW %.2fx, Twill %.2fx over SW; Twill %.2fx vs HW\n", hwSum / count,
                twSum / count, twHwSum / count);
    std::printf("(Thesis: 13.6x / 22.2x / 1.63x — our magnitudes are compressed because the\n"
                " simulated Microblaze has an idealized CPI; orderings are the claim here.)\n");
  }
  return 0;
}
