// Fig. 6.3 — MIPS benchmark performance (and queue count) across targeted
// partition split points.
#include "bench/bench_common.h"

using namespace twill;
using namespace twill::bench;

int main() {
  header("Fig 6.3: MIPS performance vs targeted SW split point",
         "queue count anti-correlates with performance; even splits perform worst");

  const KernelInfo* k = findKernel("mips");
  std::printf("%-10s %12s %10s %12s\n", "SW split", "Twill cycles", "#queues", "vs pure HW");

  // Pure-HW reference once.
  PreparedKernel ref = prepareKernel(*k);
  SimOutcome hw = simulatePureHW(*ref.base, ref.baseSchedules);

  for (double split : {0.05, 0.10, 0.25, 0.40, 0.50, 0.65, 0.80, 0.95}) {
    DswpConfig cfg;
    cfg.swFraction = split;
    PreparedKernel pk = prepareKernel(*k, cfg);
    if (!pk.ok) continue;
    SimConfig sc;
    uint64_t cycles = runTwillCycles(pk, sc);
    double vsHW = cycles ? static_cast<double>(hw.cycles) / cycles : 0;
    std::printf("%9.0f%% %12llu %10u %11.2fx\n", split * 100,
                static_cast<unsigned long long>(cycles), pk.dswp.totalQueues(), vsHW);
  }
  std::printf("\n(The thesis's Fig 6.3 shows performance degrading toward mid/large splits\n"
              " while the queue count varies with the split point.)\n");
  return 0;
}
