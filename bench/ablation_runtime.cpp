// Ablations over the design choices DESIGN.md calls out:
//  * scheduler quantum (hardware scheduler period, §4.4),
//  * partition count K (the "number of initial partitions" input, §5.2),
//  * inline threshold (function-level pipelining vs fully-inlined DSWP).
#include "bench/bench_common.h"

using namespace twill;
using namespace twill::bench;

int main() {
  header("Ablations: scheduler quantum, partition count, inlining",
         "design-choice sensitivity; not a thesis figure");

  // --- Partition count sweep (representative kernels) -----------------------
  std::printf("\n-- Partition count K (Twill cycles) --\n%-10s", "Benchmark");
  const unsigned ks[] = {2, 3, 4, 6};
  for (unsigned kk : ks) std::printf(" %7s%-2u", "K=", kk);
  std::printf(" %9s\n", "auto");
  for (const char* name : {"sha", "jpeg", "adpcm", "gsm"}) {
    const KernelInfo* k = findKernel(name);
    std::printf("%-10s", name);
    for (unsigned kk : ks) {
      DswpConfig cfg;
      cfg.numPartitions = kk;
      PreparedKernel pk = prepareKernel(*k, cfg);
      SimConfig sc;
      std::printf(" %9llu", static_cast<unsigned long long>(runTwillCycles(pk, sc)));
    }
    DswpConfig cfg;  // auto
    PreparedKernel pk = prepareKernel(*k, cfg);
    SimConfig sc;
    std::printf(" %9llu\n", static_cast<unsigned long long>(runTwillCycles(pk, sc)));
  }

  // --- Scheduler quantum sweep ----------------------------------------------
  std::printf("\n-- Scheduler quantum (Twill cycles, sha) --\n");
  {
    const KernelInfo* k = findKernel("sha");
    PreparedKernel pk = prepareKernel(*k);
    for (unsigned q : {100u, 500u, 2000u, 10000u}) {
      SimConfig sc;
      sc.schedQuantum = q;
      std::printf("  quantum %6u: %llu cycles\n", q,
                  static_cast<unsigned long long>(runTwillCycles(pk, sc)));
    }
  }

  // --- Processor count (§4.5 supports several Microblazes) -------------------
  std::printf("\n-- Processor count (Twill cycles, sha at sw-split 60%%) --\n");
  {
    const KernelInfo* k = findKernel("sha");
    DswpConfig cfg;
    cfg.swFraction = 0.6;  // force several SW threads so processors matter
    PreparedKernel pk = prepareKernel(*k, cfg);
    for (unsigned procs : {1u, 2u, 4u}) {
      SimConfig sc;
      sc.numProcessors = procs;
      std::printf("  %u processor%s: %llu cycles\n", procs, procs == 1 ? " " : "s",
                  static_cast<unsigned long long>(runTwillCycles(pk, sc)));
    }
  }

  // --- Inline threshold: fully inlined vs function-level pipelining ---------
  std::printf("\n-- Inline threshold (Twill cycles, mpeg2) --\n");
  {
    // mpeg2 has a multi-call-site function (decode_mv), so the threshold
    // actually toggles master/slave function pipelining.
    const KernelInfo* k = findKernel("mpeg2");
    for (unsigned thr : {0u, 40u, 2000u}) {
      DswpConfig cfg;
      PreparedKernel pk = prepareKernel(*k, cfg, thr);
      if (!pk.ok) continue;
      SimConfig sc;
      uint64_t cycles = runTwillCycles(pk, sc);
      std::printf("  inline<=%-5u: %8llu cycles, %3u queues, %zu threads%s\n", thr,
                  static_cast<unsigned long long>(cycles), pk.dswp.totalQueues(),
                  pk.dswp.threads.size(),
                  thr == 0 ? "  (master/slave function pipelining active)" : "");
    }
  }
  return 0;
}
